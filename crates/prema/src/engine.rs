//! The PREMA node engine: one task at a time on a monolithic 128×128
//! systolic accelerator, scheduled by the token-based policy.
//!
//! The integer-cycle event loop — admission, work advancement, exact
//! completion detection, retirement — lives in [`planaria_sim`]; this
//! module keeps only PREMA's *decisions*: token accrual, the
//! threshold + shortest-job pick, and the context-switch cost a
//! preemption charges to the incoming job. The monolithic chip maps onto
//! the kernel as "the runner holds every subarray" (`alloc = total`),
//! so retirement, busy-time and completion logic are shared with
//! Planaria verbatim.

use crate::policy::{pick_with_threshold, Policy, PolicyTask, TokenState};
use planaria_arch::{AcceleratorConfig, Arrangement};
use planaria_compiler::{CompiledDnn, CompiledLibrary};
use planaria_sim::{full_mask, EnginePolicy, SimClock, SimState};
use planaria_telemetry::{Collector, Counter, Event, Metric, NullCollector};
use planaria_timing::{reconfiguration_cycles, ExecContext};
use planaria_workload::{Request, SimResult};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A single node running the PREMA baseline.
#[derive(Debug, Clone)]
pub struct PremaEngine {
    library: CompiledLibrary,
    policy: Policy,
    /// Starvation threshold, seconds of priority-weighted waiting
    /// (converted to token units once per run).
    token_threshold: f64,
}

impl PremaEngine {
    /// Builds the engine with the paper's baseline hardware (monolithic
    /// TPU-like array, same budget as Planaria) and the PREMA policy.
    pub fn new_default() -> Self {
        Self::new(AcceleratorConfig::monolithic(), Policy::Prema)
    }

    /// Builds the engine with an explicit configuration and policy (FCFS /
    /// SJF are used by the scheduler ablation). Compilation goes through
    /// the process-wide [`CompiledLibrary::shared_for`] cache, so many
    /// engines on one geometry share a single compile.
    pub fn new(cfg: AcceleratorConfig, policy: Policy) -> Self {
        Self {
            library: CompiledLibrary::clone(&CompiledLibrary::shared_for(&cfg)),
            policy,
            token_threshold: crate::policy::TOKEN_THRESHOLD,
        }
    }

    /// Overrides the starvation token threshold, in seconds of
    /// priority-weighted waiting (sensitivity-study hook).
    pub fn with_token_threshold(mut self, threshold: f64) -> Self {
        self.token_threshold = threshold;
        self
    }

    /// Builds over an existing library (must be compiled for a monolithic
    /// configuration to be a faithful PREMA baseline).
    pub fn with_library(library: CompiledLibrary, policy: Policy) -> Self {
        Self {
            library,
            policy,
            token_threshold: crate::policy::TOKEN_THRESHOLD,
        }
    }

    /// The compiled library backing this engine.
    pub fn library(&self) -> &CompiledLibrary {
        &self.library
    }

    /// Simulates one trace (must be sorted by arrival time).
    ///
    /// # Panics
    ///
    /// Panics if the trace is not sorted by arrival.
    pub fn run(&self, trace: &[Request]) -> SimResult {
        self.run_with_collector(trace, &mut NullCollector)
    }

    /// Simulates one trace, streaming telemetry into `c`.
    ///
    /// The simulation never branches on the collector: with
    /// [`NullCollector`] every hook inlines to a no-op and the results are
    /// bit-identical to [`run`](Self::run).
    ///
    /// # Panics
    ///
    /// Panics if the trace is not sorted by arrival.
    pub fn run_with_collector<C: Collector>(&self, trace: &[Request], c: &mut C) -> SimResult {
        let cfg = *self.library.config();
        let mut policy = self.temporal_policy(&cfg);
        planaria_sim::run(&cfg, trace, &mut policy, c)
    }

    /// [`run`](Self::run) over a pull-based request source: requests are
    /// drawn lazily, so resident request memory is O(live tenants) and the
    /// results are bit-identical to the materialized path.
    ///
    /// # Panics
    ///
    /// Panics if the source yields arrivals out of order.
    pub fn run_streamed<I: IntoIterator<Item = Request>>(&self, requests: I) -> SimResult {
        self.run_streamed_with_collector(requests, &mut NullCollector)
    }

    /// [`run_streamed`](Self::run_streamed) with a telemetry collector.
    ///
    /// # Panics
    ///
    /// Panics if the source yields arrivals out of order.
    pub fn run_streamed_with_collector<C: Collector, I: IntoIterator<Item = Request>>(
        &self,
        requests: I,
        c: &mut C,
    ) -> SimResult {
        let cfg = *self.library.config();
        let mut policy = self.temporal_policy(&cfg);
        planaria_sim::run_streamed(&cfg, requests, &mut policy, c)
    }

    /// A fresh kernel policy for one simulation run (or one cluster
    /// node): token-based temporal multiplexing with this engine's
    /// threshold and its own private token state. Heterogeneous cluster
    /// fabrics mix these with Planaria's spatial policy.
    pub fn node_policy(&self) -> TemporalPolicy<'_> {
        self.temporal_policy(self.library.config())
    }

    fn temporal_policy(&self, cfg: &AcceleratorConfig) -> TemporalPolicy<'_> {
        let total = cfg.num_subarrays();
        TemporalPolicy {
            library: &self.library,
            policy: self.policy,
            threshold: SimClock::for_config(cfg)
                .duration_cycles(self.token_threshold)
                .get(),
            ctx: ExecContext::full_chip(cfg),
            mono: Arrangement::monolithic(total),
            mask: full_mask(total),
            total,
            running: None,
            tokens: BTreeMap::new(),
            views: Vec::new(),
        }
    }
}

/// The PREMA scheduling policy plugged into the kernel: token-based
/// temporal multiplexing of the whole chip.
pub struct TemporalPolicy<'a> {
    library: &'a CompiledLibrary,
    policy: Policy,
    /// Starvation bar in token units (priority-weighted cycles).
    threshold: u64,
    ctx: ExecContext,
    mono: Arrangement,
    /// The whole-chip placement bitmask every runner owns.
    mask: u128,
    total: u32,
    /// Request id of the current occupant, if any.
    running: Option<u64>,
    /// Token bookkeeping per request id (outlives queue reordering).
    tokens: BTreeMap<u64, TokenState>,
    /// Reusable per-event policy view buffer (grows to the live-tenant
    /// high-water mark once; steady-state events allocate nothing).
    views: Vec<PolicyTask>,
}

impl EnginePolicy for TemporalPolicy<'_> {
    fn compiled_for(&mut self, request: &Request) -> Arc<CompiledDnn> {
        self.library.shared(request.dnn)
    }

    fn admit_subarrays(&self) -> u32 {
        // The monolithic baseline has exactly one configuration table;
        // seed work accounting with it directly (never rescaled).
        self.total
    }

    fn reschedule<C: Collector>(&mut self, sim: &mut SimState, c: &mut C) {
        let now = sim.now;
        // The kernel retired the runner: the chip is free again.
        if let Some(id) = self.running {
            if sim.index_of(id).is_none() {
                self.running = None;
            }
        }
        // Bound the token map: drop entries for long-retired requests
        // (amortized; the membership probe is the kernel's id index, so
        // the sweep allocates nothing).
        if self.tokens.len() > sim.tenants.len() + 64 {
            self.tokens.retain(|id, _| sim.index_of(*id).is_some());
        }
        // Accrue tokens for waiting tenants; the runner does not collect.
        for t in &sim.tenants {
            let id = t.request.id;
            let entry = self.tokens.entry(id).or_insert(TokenState {
                tokens: 0,
                last_update: now,
            });
            if Some(id) == self.running {
                entry.last_update = now;
            } else {
                entry.accrue(t.request.priority, now);
            }
        }

        // Policy decision (a scheduling event fired). The view buffer is
        // owned scratch: cleared, not reallocated, per event.
        self.views.clear();
        for (i, t) in sim.tenants.iter().enumerate() {
            self.views.push(PolicyTask {
                index: i,
                tokens: self.tokens[&t.request.id].tokens,
                arrival: t.arrival_cycle,
                remaining: t.remaining(),
            });
        }
        let chosen_idx = pick_with_threshold(self.policy, &self.views, self.threshold);
        let chosen_id = chosen_idx.map(|i| sim.tenants[i].request.id);
        if chosen_id != self.running {
            let running_idx = self.running.and_then(|id| sim.index_of(id));
            if let Some(cur) = running_idx {
                // The incumbent loses the accelerator mid-flight.
                if c.is_enabled() {
                    let t = &sim.tenants[cur];
                    c.record(
                        now,
                        Event::ExecSlice {
                            tenant: t.request.id,
                            subarrays: self.total,
                            mask: self.mask,
                            start: t.slice_start,
                            duration: now.saturating_sub(t.slice_start),
                        },
                    );
                    c.record(
                        now,
                        Event::Allocation {
                            tenant: t.request.id,
                            from: self.total,
                            to: 0,
                            mask: 0,
                        },
                    );
                }
                let t = &mut sim.tenants[cur];
                t.queued_since = now;
                t.alloc = 0;
                t.mask = 0;
            }
            if let Some(next) = chosen_idx {
                // Context switch: checkpoint the preempted job's tile and
                // restore the incoming job's weights/pipeline.
                if let Some(cur) = running_idx {
                    let cost = {
                        let t = &sim.tenants[cur];
                        let pos = t.compiled.table(self.total).position(t.fraction_done());
                        reconfiguration_cycles(&self.ctx, self.mono, self.mono, pos.tile_bytes)
                    };
                    if c.is_enabled() {
                        c.record(
                            now,
                            Event::Preemption {
                                preempted: sim.tenants[cur].request.id,
                                incoming: sim.tenants[next].request.id,
                                overhead: cost.total(),
                            },
                        );
                        c.add(Counter::Preemptions, 1);
                        c.sample(Metric::ReconfigCycles, cost.total().as_f64());
                    }
                    sim.tenants[next].overhead += cost.total();
                }
                let t = &mut sim.tenants[next];
                if c.is_enabled() {
                    let wait = now.saturating_sub(t.queued_since);
                    c.record(
                        now,
                        Event::QueueWait {
                            tenant: t.request.id,
                            start: t.queued_since,
                            duration: wait,
                        },
                    );
                    c.record(
                        now,
                        Event::Allocation {
                            tenant: t.request.id,
                            from: 0,
                            to: self.total,
                            mask: self.mask,
                        },
                    );
                    c.sample(Metric::QueueWaitCycles, wait.as_f64());
                    c.sample(Metric::AllocationSize, f64::from(self.total));
                }
                t.slice_start = now;
                t.alloc = self.total;
                t.mask = self.mask;
            }
            self.running = chosen_id;
        }
        if c.is_enabled() {
            c.add(Counter::SchedulingEvents, 1);
            let waiting = sim.tenants.len() - usize::from(self.running.is_some());
            c.sample(Metric::QueueDepth, waiting as f64);
            c.sample(
                Metric::OccupancyPct,
                if self.running.is_some() { 100.0 } else { 0.0 },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planaria_model::DnnId;
    use planaria_workload::{Completion, QosLevel, Scenario, TraceConfig};

    fn engine() -> PremaEngine {
        PremaEngine::new_default()
    }

    #[test]
    fn lone_task_runs_at_monolithic_isolated_speed() {
        let e = engine();
        let r = Request {
            id: 0,
            dnn: DnnId::GoogLeNet,
            arrival: 0.0,
            priority: 5,
            qos: 1.0,
        };
        let result = e.run(&[r]);
        let iso = e.library.isolated_latency(DnnId::GoogLeNet);
        let lat = result.completions[0].latency();
        assert!((lat / iso - 1.0).abs() < 0.01, "lat {lat} iso {iso}");
    }

    #[test]
    fn temporal_sharing_serializes_two_tasks() {
        let e = engine();
        let iso = e.library.isolated_latency(DnnId::ResNet50);
        let mk = |id| Request {
            id,
            dnn: DnnId::ResNet50,
            arrival: 0.0,
            priority: 5,
            qos: 1.0,
        };
        let result = e.run(&[mk(0), mk(1)]);
        let worst = result
            .completions
            .iter()
            .map(Completion::latency)
            .fold(0.0, f64::max);
        // Second task waits for the first: worst latency ≈ 2x isolated.
        assert!(worst > 1.8 * iso, "worst {worst} iso {iso}");
    }

    #[test]
    fn all_policies_complete_everything() {
        for policy in [Policy::Prema, Policy::Fcfs, Policy::Sjf] {
            let e = PremaEngine::new(AcceleratorConfig::monolithic(), policy);
            let trace = TraceConfig::new(Scenario::A, QosLevel::Soft, 30.0, 25, 7).generate();
            let r = e.run(&trace);
            assert_eq!(r.completions.len(), 25, "{policy:?}");
        }
    }

    #[test]
    fn high_priority_waits_less_under_prema() {
        // Saturate with low-priority heavy jobs plus one priority-11 job;
        // its wait should be shorter than under FCFS.
        let mk = |id, arrival, dnn, priority| Request {
            id,
            dnn,
            arrival,
            priority,
            qos: 10.0,
        };
        let mut trace = vec![
            mk(0, 0.000, DnnId::SsdResNet34, 1),
            mk(1, 0.001, DnnId::SsdResNet34, 1),
            mk(2, 0.002, DnnId::SsdResNet34, 1),
            mk(3, 0.003, DnnId::ResNet50, 11),
        ];
        trace.sort_by(|a, b| a.arrival.partial_cmp(&b.arrival).unwrap());
        let prema = PremaEngine::new_default().run(&trace);
        let fcfs = PremaEngine::new(AcceleratorConfig::monolithic(), Policy::Fcfs).run(&trace);
        let lat = |r: &SimResult| {
            r.completions
                .iter()
                .find(|c| c.request.id == 3)
                .unwrap()
                .latency()
        };
        assert!(
            lat(&prema) < lat(&fcfs),
            "prema {} vs fcfs {}",
            lat(&prema),
            lat(&fcfs)
        );
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn unsorted_trace_rejected() {
        let mut trace = TraceConfig::new(Scenario::B, QosLevel::Soft, 10.0, 5, 3).generate();
        trace.reverse();
        let _ = engine().run(&trace);
    }

    #[test]
    fn preemptions_show_up_in_telemetry() {
        // Two heavy jobs plus a late short high-priority one: PREMA must
        // preempt at least once, and the kernel-side events must balance.
        let e = engine();
        let trace = TraceConfig::new(Scenario::A, QosLevel::Soft, 200.0, 30, 5).generate();
        let mut c = planaria_telemetry::RecordingCollector::new();
        let r = e.run_with_collector(&trace, &mut c);
        assert_eq!(r.completions.len(), 30);
        let report = c.report();
        assert_eq!(report.counter(Counter::Arrivals), 30);
        assert_eq!(report.counter(Counter::Completions), 30);
        assert!(report.counter(Counter::Preemptions) > 0);
    }
}
