//! The PREMA node engine: one task at a time on a monolithic 128×128
//! systolic accelerator, scheduled by the token-based policy.

use crate::policy::{pick_with_threshold, Policy, PolicyTask, TokenState};
use planaria_arch::{AcceleratorConfig, Arrangement};
use planaria_compiler::CompiledLibrary;
use planaria_energy::EnergyModel;
use planaria_model::units::{Cycles, Picojoules};
use planaria_telemetry::{Collector, Counter, Event, Metric, NullCollector, SimMeta};
use planaria_timing::{reconfiguration_cycles, ExecContext};
use planaria_workload::{Completion, Request, SimResult};

/// Work-fraction tolerance for completion detection.
const DONE_EPS: f64 = 1e-9;

#[derive(Debug, Clone)]
struct Job {
    request: Request,
    done: f64,
    tokens: TokenState,
    /// Preemption overhead owed before useful progress, cycles.
    overhead_cycles: f64,
    energy: Picojoules,
    /// When the current wait for the accelerator began (telemetry only).
    queued_since: f64,
}

/// Converts seconds-since-run-start to exact telemetry cycles.
#[inline]
fn to_cycles(seconds: f64, freq_hz: f64) -> Cycles {
    Cycles::new((seconds * freq_hz).max(0.0).round() as u64)
}

/// PREMA always owns the whole chip: every subarray bit is set.
fn full_mask(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// A single node running the PREMA baseline.
#[derive(Debug, Clone)]
pub struct PremaEngine {
    library: CompiledLibrary,
    policy: Policy,
    token_threshold: f64,
}

impl PremaEngine {
    /// Builds the engine with the paper's baseline hardware (monolithic
    /// TPU-like array, same budget as Planaria) and the PREMA policy.
    pub fn new_default() -> Self {
        Self::new(AcceleratorConfig::monolithic(), Policy::Prema)
    }

    /// Builds the engine with an explicit configuration and policy (FCFS /
    /// SJF are used by the scheduler ablation).
    pub fn new(cfg: AcceleratorConfig, policy: Policy) -> Self {
        Self {
            library: CompiledLibrary::new(cfg),
            policy,
            token_threshold: crate::policy::TOKEN_THRESHOLD,
        }
    }

    /// Overrides the starvation token threshold (sensitivity-study hook).
    pub fn with_token_threshold(mut self, threshold: f64) -> Self {
        self.token_threshold = threshold;
        self
    }

    /// Builds over an existing library (must be compiled for a monolithic
    /// configuration to be a faithful PREMA baseline).
    pub fn with_library(library: CompiledLibrary, policy: Policy) -> Self {
        Self {
            library,
            policy,
            token_threshold: crate::policy::TOKEN_THRESHOLD,
        }
    }

    /// The compiled library backing this engine.
    pub fn library(&self) -> &CompiledLibrary {
        &self.library
    }

    fn table_for(&self, job: &Job) -> &planaria_compiler::ConfigTable {
        let n = self.library.config().num_subarrays();
        self.library.get(job.request.dnn).table(n)
    }

    fn remaining_seconds(&self, job: &Job, freq: f64) -> f64 {
        (job.overhead_cycles + self.table_for(job).remaining_cycles(job.done).as_f64()) / freq
    }

    /// Simulates one trace (must be sorted by arrival time).
    ///
    /// # Panics
    ///
    /// Panics if the trace is not sorted by arrival.
    pub fn run(&self, trace: &[Request]) -> SimResult {
        self.run_with_collector(trace, &mut NullCollector)
    }

    /// Simulates one trace, streaming telemetry into `c`.
    ///
    /// The simulation never branches on the collector: with
    /// [`NullCollector`] every hook inlines to a no-op and the results are
    /// bit-identical to [`run`](Self::run).
    ///
    /// # Panics
    ///
    /// Panics if the trace is not sorted by arrival.
    pub fn run_with_collector<C: Collector>(&self, trace: &[Request], c: &mut C) -> SimResult {
        assert!(
            trace.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "trace must be sorted by arrival time"
        );
        let cfg = *self.library.config();
        let freq = cfg.freq_hz;
        let em = EnergyModel::for_config(&cfg);
        let ctx = ExecContext::full_chip(&cfg);
        let total = cfg.num_subarrays();
        let mono = Arrangement::monolithic(total);
        let mask = full_mask(total);
        c.set_meta(SimMeta {
            freq_hz: freq,
            total_subarrays: total,
        });

        let mut jobs: Vec<Job> = Vec::new();
        let mut running: Option<usize> = None;
        let mut completions: Vec<Completion> = Vec::new();
        let mut next_arrival = 0usize;
        let mut now = trace.first().map_or(0.0, |r| r.arrival);
        let start = now;
        let mut busy_seconds = 0.0f64;
        // When the current occupant's slice began (telemetry only).
        let mut slice_since = now;

        while next_arrival < trace.len() || !jobs.is_empty() {
            let arrival_t = trace.get(next_arrival).map(|r| r.arrival);
            let completion_t = running.map(|i| now + self.remaining_seconds(&jobs[i], freq));
            let t_next = match (arrival_t, completion_t) {
                (Some(a), Some(c)) => a.min(c),
                (Some(a), None) => a,
                (None, Some(c)) => c,
                (None, None) => break,
            };

            // Advance the running job.
            if let Some(i) = running {
                busy_seconds += (t_next - now).max(0.0);
                let mut cycles = (t_next - now).max(0.0) * freq;
                let job = &mut jobs[i];
                if job.overhead_cycles > 0.0 {
                    let burn = job.overhead_cycles.min(cycles);
                    job.overhead_cycles -= burn;
                    cycles -= burn;
                }
                if cycles > 0.0 {
                    let table = {
                        let n = cfg.num_subarrays();
                        self.library.get(job.request.dnn).table(n)
                    };
                    let before = job.done;
                    job.done = table.advance(job.done, Cycles::new(cycles.round() as u64));
                    if job.done > 1.0 - DONE_EPS {
                        job.done = 1.0;
                    }
                    job.energy += (job.done - before) * table.total_energy();
                }
            }
            now = t_next;

            // Admit arrivals.
            while next_arrival < trace.len() && trace[next_arrival].arrival <= now + 1e-12 {
                let req = trace[next_arrival];
                if c.is_enabled() {
                    c.record(
                        to_cycles(now - start, freq),
                        Event::Arrival {
                            tenant: req.id,
                            dnn: req.dnn,
                        },
                    );
                    c.add(Counter::Arrivals, 1);
                }
                jobs.push(Job {
                    request: req,
                    done: 0.0,
                    tokens: TokenState {
                        tokens: 0.0,
                        last_update: now,
                    },
                    overhead_cycles: 0.0,
                    energy: Picojoules::ZERO,
                    queued_since: now,
                });
                next_arrival += 1;
            }

            // Retire the running job if finished.
            if let Some(i) = running {
                if jobs[i].done >= 1.0 - DONE_EPS {
                    let job = jobs.swap_remove(i);
                    if c.is_enabled() {
                        let ts_now = to_cycles(now - start, freq);
                        let s = to_cycles(slice_since - start, freq);
                        c.record(
                            ts_now,
                            Event::ExecSlice {
                                tenant: job.request.id,
                                subarrays: total,
                                mask,
                                start: s,
                                duration: ts_now.saturating_sub(s),
                            },
                        );
                        c.record(
                            ts_now,
                            Event::Completion {
                                tenant: job.request.id,
                                latency: to_cycles(now - job.request.arrival, freq),
                            },
                        );
                        c.add(Counter::Completions, 1);
                    }
                    completions.push(Completion {
                        request: job.request,
                        finish: now,
                        energy: job.energy,
                    });
                    running = None;
                }
            }

            // Accrue tokens for waiting jobs; the runner does not collect.
            for (i, job) in jobs.iter_mut().enumerate() {
                if Some(i) != running {
                    job.tokens.accrue(job.request.priority, now);
                } else {
                    job.tokens.last_update = now;
                }
            }

            // Policy decision (a scheduling event fired).
            let views: Vec<PolicyTask> = jobs
                .iter()
                .enumerate()
                .map(|(i, j)| PolicyTask {
                    index: i,
                    tokens: j.tokens.tokens,
                    arrival: j.request.arrival,
                    remaining: self.remaining_seconds(j, freq),
                })
                .collect();
            let chosen = pick_with_threshold(self.policy, &views, self.token_threshold);
            if chosen != running {
                let ts_now = to_cycles(now - start, freq);
                if let Some(cur) = running {
                    // The incumbent loses the accelerator mid-flight.
                    if c.is_enabled() {
                        let s = to_cycles(slice_since - start, freq);
                        c.record(
                            ts_now,
                            Event::ExecSlice {
                                tenant: jobs[cur].request.id,
                                subarrays: total,
                                mask,
                                start: s,
                                duration: ts_now.saturating_sub(s),
                            },
                        );
                        c.record(
                            ts_now,
                            Event::Allocation {
                                tenant: jobs[cur].request.id,
                                from: total,
                                to: 0,
                                mask: 0,
                            },
                        );
                    }
                    jobs[cur].queued_since = now;
                }
                if let Some(next) = chosen {
                    // Context switch: checkpoint the preempted job's tile and
                    // restore the incoming job's weights/pipeline.
                    if let Some(cur) = running {
                        let pos = self.table_for(&jobs[cur]).position(jobs[cur].done);
                        let cost = reconfiguration_cycles(&ctx, mono, mono, pos.tile_bytes);
                        if c.is_enabled() {
                            c.record(
                                ts_now,
                                Event::Preemption {
                                    preempted: jobs[cur].request.id,
                                    incoming: jobs[next].request.id,
                                    overhead: cost.total(),
                                },
                            );
                            c.add(Counter::Preemptions, 1);
                            c.sample(Metric::ReconfigCycles, cost.total().as_f64());
                        }
                        jobs[next].overhead_cycles += cost.total().as_f64();
                    }
                    if c.is_enabled() {
                        let qs = to_cycles(jobs[next].queued_since - start, freq);
                        let wait = ts_now.saturating_sub(qs);
                        c.record(
                            ts_now,
                            Event::QueueWait {
                                tenant: jobs[next].request.id,
                                start: qs,
                                duration: wait,
                            },
                        );
                        c.record(
                            ts_now,
                            Event::Allocation {
                                tenant: jobs[next].request.id,
                                from: 0,
                                to: total,
                                mask,
                            },
                        );
                        c.sample(Metric::QueueWaitCycles, wait.as_f64());
                        c.sample(Metric::AllocationSize, f64::from(total));
                    }
                    slice_since = now;
                }
                running = chosen;
            }
            if c.is_enabled() {
                c.add(Counter::SchedulingEvents, 1);
                let waiting = jobs.len() - usize::from(running.is_some());
                c.sample(Metric::QueueDepth, waiting as f64);
                c.sample(
                    Metric::OccupancyPct,
                    if running.is_some() { 100.0 } else { 0.0 },
                );
            }
        }

        completions.sort_by_key(|c| c.request.id);
        let makespan = (now - start).max(0.0);
        let dynamic: Picojoules = completions.iter().map(|c| c.energy).sum();
        // Static energy accrues while the accelerator serves a job.
        SimResult {
            completions,
            total_energy: dynamic + em.static_energy(busy_seconds),
            makespan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planaria_model::DnnId;
    use planaria_workload::{QosLevel, Scenario, TraceConfig};

    fn engine() -> PremaEngine {
        PremaEngine::new_default()
    }

    #[test]
    fn lone_task_runs_at_monolithic_isolated_speed() {
        let e = engine();
        let r = Request {
            id: 0,
            dnn: DnnId::GoogLeNet,
            arrival: 0.0,
            priority: 5,
            qos: 1.0,
        };
        let result = e.run(&[r]);
        let iso = e.library.isolated_latency(DnnId::GoogLeNet);
        let lat = result.completions[0].latency();
        assert!((lat / iso - 1.0).abs() < 0.01, "lat {lat} iso {iso}");
    }

    #[test]
    fn temporal_sharing_serializes_two_tasks() {
        let e = engine();
        let iso = e.library.isolated_latency(DnnId::ResNet50);
        let mk = |id| Request {
            id,
            dnn: DnnId::ResNet50,
            arrival: 0.0,
            priority: 5,
            qos: 1.0,
        };
        let result = e.run(&[mk(0), mk(1)]);
        let worst = result
            .completions
            .iter()
            .map(Completion::latency)
            .fold(0.0, f64::max);
        // Second task waits for the first: worst latency ≈ 2x isolated.
        assert!(worst > 1.8 * iso, "worst {worst} iso {iso}");
    }

    #[test]
    fn all_policies_complete_everything() {
        for policy in [Policy::Prema, Policy::Fcfs, Policy::Sjf] {
            let e = PremaEngine::new(AcceleratorConfig::monolithic(), policy);
            let trace = TraceConfig::new(Scenario::A, QosLevel::Soft, 30.0, 25, 7).generate();
            let r = e.run(&trace);
            assert_eq!(r.completions.len(), 25, "{policy:?}");
        }
    }

    #[test]
    fn high_priority_waits_less_under_prema() {
        // Saturate with low-priority heavy jobs plus one priority-11 job;
        // its wait should be shorter than under FCFS.
        let mk = |id, arrival, dnn, priority| Request {
            id,
            dnn,
            arrival,
            priority,
            qos: 10.0,
        };
        let mut trace = vec![
            mk(0, 0.000, DnnId::SsdResNet34, 1),
            mk(1, 0.001, DnnId::SsdResNet34, 1),
            mk(2, 0.002, DnnId::SsdResNet34, 1),
            mk(3, 0.003, DnnId::ResNet50, 11),
        ];
        trace.sort_by(|a, b| a.arrival.partial_cmp(&b.arrival).unwrap());
        let prema = PremaEngine::new_default().run(&trace);
        let fcfs = PremaEngine::new(AcceleratorConfig::monolithic(), Policy::Fcfs).run(&trace);
        let lat = |r: &SimResult| {
            r.completions
                .iter()
                .find(|c| c.request.id == 3)
                .unwrap()
                .latency()
        };
        assert!(
            lat(&prema) < lat(&fcfs),
            "prema {} vs fcfs {}",
            lat(&prema),
            lat(&fcfs)
        );
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn unsorted_trace_rejected() {
        let mut trace = TraceConfig::new(Scenario::B, QosLevel::Soft, 10.0, 5, 3).generate();
        trace.reverse();
        let _ = engine().run(&trace);
    }
}
