//! Energy, power, and area model for the Planaria accelerator.
//!
//! This crate substitutes for the paper's synthesis flow (Synopsys DC on
//! FreePDK-45nm for logic, CACTI-P for SRAM, McPAT for interconnect) with an
//! analytical model: per-event energy constants in the range those tools
//! report at 45 nm, plus a component-level area/power breakdown calibrated
//! to the paper's Fig. 19 result (dynamic fission adds **12.6 % area** and
//! **20.6 % power**).
//!
//! The evaluation consumes only (a) per-event energies applied to the
//! [`AccessCounts`](planaria_timing::AccessCounts) the timing model
//! produces and (b) the breakdown fractions, so this substitution preserves
//! every downstream number's shape.
//!
//! # Example
//!
//! ```
//! use planaria_arch::AcceleratorConfig;
//! use planaria_energy::EnergyModel;
//! use planaria_model::DnnId;
//! use planaria_timing::{time_dnn, ExecContext};
//!
//! let cfg = AcceleratorConfig::planaria();
//! let em = EnergyModel::for_config(&cfg);
//! let t = time_dnn(&ExecContext::full_chip(&cfg), &DnnId::MobileNetV1.build());
//! let report = em.energy_of(&t.counts, t.seconds(cfg.freq_hz));
//! assert!(report.total().as_pj() > 0.0);
//! ```

pub mod breakdown;
pub mod constants;
pub mod model;

pub use breakdown::{AreaPowerBreakdown, Component, Scaling};
pub use model::{edp, EnergyModel, EnergyReport};
