//! Component-level area/power breakdown (Fig. 19).
//!
//! The paper synthesizes Planaria at 45 nm and reports the area and power of
//! each added fission component; the bottom line is **+12.6 % area** and
//! **+20.6 % power** over a conventional systolic design with the same
//! compute. We encode the component decomposition so that (a) Fig. 19 can be
//! regenerated and (b) granularity sweeps (Fig. 18) can scale the overheads
//! with the number of subarrays.

use planaria_arch::AcceleratorConfig;

/// One hardware component of the breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Component {
    /// Component name.
    pub name: &'static str,
    /// Area in relative units (calibrated so fractions match Fig. 19).
    pub area: f64,
    /// Power in relative units.
    pub power: f64,
    /// Whether this component exists only to support dynamic fission.
    pub fission_overhead: bool,
    /// How the component scales with the fission granularity.
    pub scaling: Scaling,
}

/// Scaling law of a component with respect to granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scaling {
    /// Scales with the PE count — constant across granularities.
    Fixed,
    /// One instance per subarray (instruction buffers, SIMD segmentation,
    /// configuration registers).
    PerSubarray,
    /// Crossbar crosspoints: quadratic in the pod radix
    /// (`subarrays_per_pod²`).
    CrossbarQuadratic,
}

/// The full chip breakdown at the paper's 32×32 granularity (16 subarrays).
///
/// Base components are identical between a conventional systolic array and
/// Planaria (§VI-B2) and the added components bring the overhead to exactly
/// 12.6 % area / 20.6 % power.
pub const COMPONENTS: [Component; 10] = [
    // Base (shared with a conventional design).
    Component {
        name: "multipliers",
        area: 12.0,
        power: 8.0,
        fission_overhead: false,
        scaling: Scaling::Fixed,
    },
    Component {
        name: "adders+accumulators",
        area: 8.0,
        power: 5.0,
        fission_overhead: false,
        scaling: Scaling::Fixed,
    },
    Component {
        name: "pipeline registers",
        area: 6.0,
        power: 4.0,
        fission_overhead: false,
        scaling: Scaling::Fixed,
    },
    Component {
        name: "SIMD vector unit",
        area: 3.0,
        power: 2.0,
        fission_overhead: false,
        scaling: Scaling::Fixed,
    },
    Component {
        name: "control+instruction buffer",
        area: 2.0,
        power: 1.0,
        fission_overhead: false,
        scaling: Scaling::Fixed,
    },
    // Fission additions.
    Component {
        name: "omni-directional muxes",
        area: 2.0,
        power: 2.4,
        fission_overhead: true,
        scaling: Scaling::Fixed,
    },
    Component {
        name: "fission-pod crossbars",
        area: 1.1,
        power: 1.4,
        fission_overhead: true,
        scaling: Scaling::CrossbarQuadratic,
    },
    Component {
        name: "SIMD unit additions",
        area: 0.8,
        power: 0.9,
        fission_overhead: true,
        scaling: Scaling::PerSubarray,
    },
    Component {
        name: "instruction buffer additions",
        area: 0.4,
        power: 0.3,
        fission_overhead: true,
        scaling: Scaling::PerSubarray,
    },
    Component {
        name: "reconfiguration registers",
        area: 0.17,
        power: 0.19,
        fission_overhead: true,
        scaling: Scaling::PerSubarray,
    },
];

/// Area/power breakdown for a given accelerator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaPowerBreakdown {
    components: Vec<Component>,
}

impl AreaPowerBreakdown {
    /// Breakdown for `cfg`, scaling overheads with the granule count
    /// relative to the reference 16 subarrays (4 per pod).
    pub fn for_config(cfg: &AcceleratorConfig) -> Self {
        let linear = f64::from(cfg.num_subarrays()) / 16.0;
        let radix = f64::from(cfg.subarrays_per_pod) / 4.0;
        let components = COMPONENTS
            .iter()
            .map(|c| {
                // Omni-directional muxes disappear when the switching
                // network is absent; all fission hardware disappears on a
                // single-granule (monolithic) chip.
                let removed = c.fission_overhead
                    && (cfg.num_subarrays() == 1
                        || (!cfg.omnidirectional && c.name == "omni-directional muxes"));
                let s = if removed {
                    0.0
                } else {
                    match c.scaling {
                        Scaling::Fixed => 1.0,
                        Scaling::PerSubarray => linear,
                        Scaling::CrossbarQuadratic => radix * radix,
                    }
                };
                Component {
                    area: c.area * s,
                    power: c.power * s,
                    ..*c
                }
            })
            .collect();
        Self { components }
    }

    /// The components.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Total area (relative units).
    pub fn total_area(&self) -> f64 {
        self.components.iter().map(|c| c.area).sum()
    }

    /// Total power (relative units).
    pub fn total_power(&self) -> f64 {
        self.components.iter().map(|c| c.power).sum()
    }

    /// Fraction of area spent on fission support.
    pub fn area_overhead(&self) -> f64 {
        let over: f64 = self
            .components
            .iter()
            .filter(|c| c.fission_overhead)
            .map(|c| c.area)
            .sum();
        over / self.total_area()
    }

    /// Fraction of power spent on fission support.
    pub fn power_overhead(&self) -> f64 {
        let over: f64 = self
            .components
            .iter()
            .filter(|c| c.fission_overhead)
            .map(|c| c.power)
            .sum();
        over / self.total_power()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_overheads_match_fig19() {
        let b = AreaPowerBreakdown::for_config(&AcceleratorConfig::planaria());
        assert!(
            (b.area_overhead() - 0.126).abs() < 0.005,
            "area overhead {}",
            b.area_overhead()
        );
        assert!(
            (b.power_overhead() - 0.206).abs() < 0.005,
            "power overhead {}",
            b.power_overhead()
        );
    }

    #[test]
    fn monolithic_has_no_fission_overhead() {
        let b = AreaPowerBreakdown::for_config(&AcceleratorConfig::monolithic());
        assert_eq!(b.area_overhead(), 0.0);
        assert_eq!(b.power_overhead(), 0.0);
    }

    #[test]
    fn finer_granularity_costs_more() {
        let fine = AreaPowerBreakdown::for_config(&AcceleratorConfig::with_granularity(16));
        let mid = AreaPowerBreakdown::for_config(&AcceleratorConfig::with_granularity(32));
        let coarse = AreaPowerBreakdown::for_config(&AcceleratorConfig::with_granularity(64));
        assert!(fine.power_overhead() > mid.power_overhead());
        assert!(mid.power_overhead() > coarse.power_overhead());
    }

    #[test]
    fn every_component_is_named_and_positive_at_reference() {
        let b = AreaPowerBreakdown::for_config(&AcceleratorConfig::planaria());
        assert_eq!(b.components().len(), 10);
        for c in b.components() {
            assert!(!c.name.is_empty());
            assert!(c.area > 0.0 && c.power > 0.0, "{}", c.name);
        }
    }
}
