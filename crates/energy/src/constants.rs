//! Per-event energy constants at 45 nm.
//!
//! Sources for the ranges: the paper's own McPAT-derived bus constant
//! (0.64 pJ/bit/hop, §VI-A), CACTI-P multi-bank scratchpad reads at
//! megabyte capacities, and published 45 nm arithmetic energy surveys
//! (Horowitz, ISSCC'14): an 8-bit multiply ≈ 0.2 pJ, a 32-bit add ≈ 0.1 pJ.

/// Energy of one useful 8-bit multiply-accumulate, joules.
pub const MAC_8BIT_J: f64 = 0.2e-12;

/// Energy per PE per active cycle (clock, pipeline registers, control —
/// paid whether or not the PE holds useful work; systolic arrays cannot
/// clock-gate finely because the wavefront keeps every register toggling),
/// joules.
pub const PE_ACTIVE_J: f64 = 0.35e-12;

/// Activation-buffer (Pod Memory read-side, MB-scale multi-bank SRAM)
/// access energy per byte, joules.
pub const ACT_SRAM_J_PER_BYTE: f64 = 6.0e-12;

/// Output/partial-sum buffer access energy per byte, joules.
pub const PSUM_SRAM_J_PER_BYTE: f64 = 6.0e-12;

/// Per-PE weight-buffer (small, local) access energy per byte, joules.
pub const WBUF_J_PER_BYTE: f64 = 1.5e-12;

/// Off-chip DRAM access energy per byte (LPDDR4-class, 20 pJ/bit), joules.
pub const DRAM_J_PER_BYTE: f64 = 160.0e-12;

/// Ring-bus energy per byte per subarray-boundary hop. The paper's McPAT
/// figure (0.64 pJ/bit, §VI-A) is for a full pod-length hop; a
/// neighbouring-subarray link is a quarter of that wire.
pub const RING_J_PER_BYTE_HOP: f64 = 0.16e-12 * 8.0;

/// The paper's McPAT pod-hop constant, exposed for the interconnect docs.
pub const POD_HOP_J_PER_BIT: f64 = 0.64e-12;

/// SIMD vector-unit energy per lane-operation, joules.
pub const VECTOR_OP_J: f64 = 1.0e-12;

/// Idle (leakage + always-on clock tree) power of the monolithic baseline
/// chip — 16K MACs plus 12 MB SRAM at 45 nm; TPU-class dies idle near
/// 28 W, of which roughly half is fan/host, so 12 W of chip background
/// power.
pub const BASELINE_LEAKAGE_W: f64 = 12.0;

/// Fraction of the fission hardware's Fig. 19 power overhead that is
/// activity-proportional (muxes and crossbar drivers toggling with the
/// datapath); the rest is clock/leakage captured by the area-scaled
/// background power.
pub const DYNAMIC_OVERHEAD_FRACTION: f64 = 0.3;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_constant_matches_paper() {
        // 0.64 pJ/bit => 5.12 pJ/byte.
        assert!((RING_J_PER_BYTE_HOP - 1.28e-12).abs() < 1e-18);
        assert!((POD_HOP_J_PER_BIT - 0.64e-12).abs() < 1e-18);
    }

    #[test]
    fn memory_hierarchy_is_ordered() {
        // Each level of the hierarchy costs more than the one below it.
        // (Read through locals so the comparison is a runtime check the
        // constants can't silently drift past.)
        let (wbuf, act, dram, mac) = (
            WBUF_J_PER_BYTE,
            ACT_SRAM_J_PER_BYTE,
            DRAM_J_PER_BYTE,
            MAC_8BIT_J,
        );
        assert!(wbuf < act);
        assert!(act < dram);
        assert!(mac < act);
    }
}
