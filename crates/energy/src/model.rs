//! The energy model proper: per-event dynamic energy plus area-scaled
//! leakage.

use crate::breakdown::AreaPowerBreakdown;
use crate::constants;
use planaria_arch::AcceleratorConfig;
use planaria_model::units::Picojoules;
use planaria_timing::AccessCounts;

/// Energy report for one execution interval.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyReport {
    /// Dynamic (switching) energy.
    pub dynamic: Picojoules,
    /// Static (leakage) energy over the interval.
    pub leakage: Picojoules,
}

impl EnergyReport {
    /// Total energy.
    pub fn total(&self) -> Picojoules {
        self.dynamic + self.leakage
    }
}

/// Energy model bound to one accelerator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    leakage_w: f64,
    /// Multiplier on dynamic event energies accounting for the fission
    /// hardware on the datapath (muxes, crossbar traversal).
    dynamic_overhead: f64,
}

impl EnergyModel {
    /// Builds the model for `cfg`: leakage scales with the Fig. 19 area
    /// overhead, dynamic events with the power overhead.
    pub fn for_config(cfg: &AcceleratorConfig) -> Self {
        let b = AreaPowerBreakdown::for_config(cfg);
        // Background power follows area; a monolithic chip has the baseline.
        let leakage_w = constants::BASELINE_LEAKAGE_W / (1.0 - b.area_overhead());
        // Only the activity-proportional slice of the Fig. 19 power
        // overhead multiplies per-event energies.
        let p = b.power_overhead();
        let dynamic_overhead = 1.0 + constants::DYNAMIC_OVERHEAD_FRACTION * p / (1.0 - p);
        Self {
            leakage_w,
            dynamic_overhead,
        }
    }

    /// Chip leakage power, watts.
    pub fn leakage_w(&self) -> f64 {
        self.leakage_w
    }

    /// Dynamic energy of a set of events. The fission-hardware overhead
    /// multiplies on-chip events only — off-chip DRAM energy is unaffected
    /// by muxes and crossbars.
    pub fn dynamic_energy(&self, c: &AccessCounts) -> Picojoules {
        let on_chip = c.mac_ops as f64 * constants::MAC_8BIT_J
            + c.pe_active_cycles.as_f64() * constants::PE_ACTIVE_J
            + c.act_sram_bytes.as_f64() * constants::ACT_SRAM_J_PER_BYTE
            + c.psum_sram_bytes.as_f64() * constants::PSUM_SRAM_J_PER_BYTE
            + c.wbuf_bytes.as_f64() * constants::WBUF_J_PER_BYTE
            + c.ring_hop_bytes.as_f64() * constants::RING_J_PER_BYTE_HOP
            + c.vector_ops as f64 * constants::VECTOR_OP_J;
        Picojoules::from_joules(
            on_chip * self.dynamic_overhead + c.dram_bytes.as_f64() * constants::DRAM_J_PER_BYTE,
        )
    }

    /// Leakage energy over `seconds` for the whole chip.
    pub fn static_energy(&self, seconds: f64) -> Picojoules {
        Picojoules::from_joules(self.leakage_w * seconds)
    }

    /// Full report: dynamic energy of `counts` plus chip leakage over
    /// `seconds`.
    pub fn energy_of(&self, counts: &AccessCounts, seconds: f64) -> EnergyReport {
        EnergyReport {
            dynamic: self.dynamic_energy(counts),
            leakage: self.static_energy(seconds),
        }
    }
}

/// Energy-delay product, J·s (the Fig. 18 metric).
pub fn edp(energy: Picojoules, seconds: f64) -> f64 {
    energy.to_joules() * seconds
}

#[cfg(test)]
mod tests {
    use super::*;
    use planaria_model::DnnId;
    use planaria_timing::{time_dnn, ExecContext};

    #[test]
    fn planaria_pays_overhead_on_identical_events() {
        let pl = EnergyModel::for_config(&AcceleratorConfig::planaria());
        let mono = EnergyModel::for_config(&AcceleratorConfig::monolithic());
        let c = AccessCounts {
            mac_ops: 1_000_000,
            ..AccessCounts::zero()
        };
        assert!(pl.dynamic_energy(&c) > mono.dynamic_energy(&c));
        assert!(pl.leakage_w() > mono.leakage_w());
    }

    #[test]
    fn depthwise_network_energy_favors_planaria_despite_overhead() {
        // MobileNet on the monolithic array burns leakage for ~11x longer;
        // fission wins on total energy (the Fig. 17 energy-reduction claim).
        let pl_cfg = AcceleratorConfig::planaria();
        let mono_cfg = AcceleratorConfig::monolithic();
        let net = DnnId::MobileNetV1.build();
        let tp = time_dnn(&ExecContext::full_chip(&pl_cfg), &net);
        let tm = time_dnn(&ExecContext::full_chip(&mono_cfg), &net);
        let ep = EnergyModel::for_config(&pl_cfg)
            .energy_of(&tp.counts, tp.seconds(pl_cfg.freq_hz))
            .total()
            .to_joules();
        let em = EnergyModel::for_config(&mono_cfg)
            .energy_of(&tm.counts, tm.seconds(mono_cfg.freq_hz))
            .total()
            .to_joules();
        assert!(em / ep > 2.0, "energy reduction only {:.2}x", em / ep);
    }

    #[test]
    fn resnet_latency_energy_in_sane_absolute_range() {
        // ResNet-50 inference on a TPU-class chip: a few mJ.
        let cfg = AcceleratorConfig::planaria();
        let t = time_dnn(&ExecContext::full_chip(&cfg), &DnnId::ResNet50.build());
        let e = EnergyModel::for_config(&cfg)
            .energy_of(&t.counts, t.seconds(cfg.freq_hz))
            .total()
            .to_joules();
        assert!(e > 1e-4 && e < 1e-1, "got {e} J");
    }

    #[test]
    fn edp_is_product() {
        assert!((edp(Picojoules::from_joules(2.0), 3.0) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn static_energy_scales_linearly_with_time() {
        let m = EnergyModel::for_config(&AcceleratorConfig::planaria());
        let twice = m.static_energy(1.0) * 2.0;
        assert!((m.static_energy(2.0) - twice).as_pj().abs() < 1e-3);
    }
}
