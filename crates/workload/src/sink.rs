//! Completion sinks: where the kernel's retirement stream goes.
//!
//! A simulation retires one [`Completion`] per request. What should
//! happen to it depends on the caller: figure binaries want the full
//! vector ([`VecSink`]), cluster sweeps want aggregate stats only
//! ([`DiscardSink`]), flat-memory percentile reporting wants a
//! fixed-size quantile sketch ([`SketchSink`]), and the 10⁷-request
//! exactness oracle wants every completion *without holding any of
//! them* — a buffered on-disk spill with a sorted replay
//! ([`SpillSink`]). The kernel is generic over the [`CompletionSink`]
//! trait, so the choice is a type parameter with zero per-event
//! dispatch cost: the sink call inlines, and for [`DiscardSink`] the
//! whole record path folds away.
//!
//! # Spill format
//!
//! [`SpillSink`] implements an external merge sort keyed by request id.
//! Completions buffer in memory; every `chunk` records the buffer is
//! sorted by id and flushed as one *run* file of fixed
//! [`RECORD_BYTES`]-byte little-endian records:
//!
//! | offset | bytes | field |
//! |--------|-------|----------------------------------|
//! | 0      | 8     | request id (`u64`)               |
//! | 8      | 4     | network (`u32` index in [`DnnId::ALL`]) |
//! | 12     | 4     | priority (`u32`)                 |
//! | 16     | 8     | arrival seconds (`f64` bits)     |
//! | 24     | 8     | QoS bound seconds (`f64` bits)   |
//! | 32     | 8     | finish seconds (`f64` bits)      |
//! | 40     | 8     | dynamic energy pJ (`f64` bits)   |
//!
//! Within a run, ids ascend; across runs, [`SpillReader`] k-way merges
//! on the (unique, monotone) id, so replay yields completions in global
//! id order — the same order [`SimResult`] sorts into — while peak
//! memory stays at one buffer plus one `BufReader` per run, independent
//! of the trace length. Floats round-trip by bit pattern, so a replayed
//! stream digests identically to the in-memory vector (pinned in
//! `crates/sim/tests/spill_exactness.rs`).
//!
//! [`SimResult`]: crate::SimResult

use crate::request::Completion;
use crate::Request;
use planaria_model::units::{Cycles, Picojoules};
use planaria_model::DnnId;
use planaria_telemetry::CycleSketch;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::PathBuf;

/// A destination for retired requests, chosen at kernel construction.
///
/// `record` is on the hot retirement path: implementations must not
/// allocate per event (amortized buffering is fine — that is the spill
/// sink's whole design) and must tolerate any retirement order; callers
/// needing a canonical order sort (or merge-replay) afterwards.
pub trait CompletionSink {
    /// Accepts one retired request. `latency` is the exact end-to-end
    /// integer-cycle latency (retirement cycle minus admission cycle) —
    /// already computed by the kernel, so sketch-style sinks need no
    /// float reconstruction.
    fn record(&mut self, completion: Completion, latency: Cycles);
}

/// Keeps every completion in memory — the default sink behind
/// `SimResult`-producing runs.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    /// Completions in retirement order.
    pub completions: Vec<Completion>,
}

impl CompletionSink for VecSink {
    fn record(&mut self, completion: Completion, _latency: Cycles) {
        self.completions.push(completion);
    }
}

/// Drops every completion: aggregate tallies only (the kernel keeps
/// those itself). The record path compiles to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiscardSink;

impl CompletionSink for DiscardSink {
    fn record(&mut self, _completion: Completion, _latency: Cycles) {}
}

/// Streams integer-cycle latencies into a fixed-memory [`CycleSketch`]:
/// p50/p99/SLA reporting for runs that never materialize completions.
#[derive(Debug, Clone, Default)]
pub struct SketchSink {
    /// The latency sketch (≤ 1/32 relative percentile over-report).
    pub sketch: CycleSketch,
}

impl CompletionSink for SketchSink {
    fn record(&mut self, _completion: Completion, latency: Cycles) {
        self.sketch.record(latency.get());
    }
}

/// Bytes per spilled completion record (see the module docs for the
/// layout).
pub const RECORD_BYTES: usize = 48;

/// Default completions buffered per run: 64Ki records ≈ 3 MiB of run
/// file, a couple of MiB of buffer — flat regardless of trace length.
pub const DEFAULT_SPILL_CHUNK: usize = 1 << 16;

fn encode(c: &Completion) -> [u8; RECORD_BYTES] {
    let dnn = DnnId::ALL
        .iter()
        .position(|&d| d == c.request.dnn)
        // lint: DnnId::ALL enumerates the whole enum by construction
        .expect("every DnnId appears in DnnId::ALL") as u32;
    let mut rec = [0u8; RECORD_BYTES];
    rec[0..8].copy_from_slice(&c.request.id.to_le_bytes());
    rec[8..12].copy_from_slice(&dnn.to_le_bytes());
    rec[12..16].copy_from_slice(&c.request.priority.to_le_bytes());
    rec[16..24].copy_from_slice(&c.request.arrival.to_bits().to_le_bytes());
    rec[24..32].copy_from_slice(&c.request.qos.to_bits().to_le_bytes());
    rec[32..40].copy_from_slice(&c.finish.to_bits().to_le_bytes());
    rec[40..48].copy_from_slice(&c.energy.as_pj().to_bits().to_le_bytes());
    rec
}

fn decode(rec: &[u8; RECORD_BYTES]) -> io::Result<Completion> {
    let word = |r: std::ops::Range<usize>| {
        // lint: caller passes constant 8-byte ranges into a 48-byte record
        u64::from_le_bytes(rec[r].try_into().expect("range is 8 bytes"))
    };
    // lint: constant 4-byte slice of a fixed-size record
    let dnn_idx = u32::from_le_bytes(rec[8..12].try_into().expect("range is 4 bytes")) as usize;
    let dnn = *DnnId::ALL.get(dnn_idx).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            "spill record names an unknown DnnId",
        )
    })?;
    Ok(Completion {
        request: Request {
            id: word(0..8),
            dnn,
            arrival: f64::from_bits(word(16..24)),
            // lint: constant 4-byte slice of a fixed-size record
            priority: u32::from_le_bytes(rec[12..16].try_into().expect("range is 4 bytes")),
            qos: f64::from_bits(word(24..32)),
        },
        finish: f64::from_bits(word(32..40)),
        energy: Picojoules::new(f64::from_bits(word(40..48))),
    })
}

/// External-merge-sort completion sink: buffers `chunk` completions,
/// spills each buffer as an id-sorted binary run file, and replays the
/// whole stream in global id order through [`SpillReader`]. Peak memory
/// is O(chunk + runs), independent of how many requests retire.
///
/// I/O errors while spilling panic (the sink sits inside the kernel's
/// infallible retirement path); errors while opening or merging surface
/// through [`finish`](SpillSink::finish) and the reader.
#[derive(Debug)]
pub struct SpillSink {
    dir: PathBuf,
    buf: Vec<Completion>,
    chunk: usize,
    runs: Vec<PathBuf>,
    /// Completions recorded (spilled + buffered).
    pub recorded: u64,
}

impl SpillSink {
    /// A spill sink writing run files `spill-run-N.bin` under `dir`
    /// (which must exist), with the default chunk size.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self::with_chunk(dir, DEFAULT_SPILL_CHUNK)
    }

    /// [`SpillSink::new`] with an explicit records-per-run chunk size.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn with_chunk(dir: impl Into<PathBuf>, chunk: usize) -> Self {
        assert!(chunk > 0, "spill chunk must be positive");
        Self {
            dir: dir.into(),
            buf: Vec::with_capacity(chunk),
            chunk,
            runs: Vec::new(),
            recorded: 0,
        }
    }

    /// Sorts the buffer by id and writes it out as one run file.
    fn flush_run(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        self.buf.sort_unstable_by_key(|c| c.request.id);
        let path = self.dir.join(format!("spill-run-{}.bin", self.runs.len()));
        // lint: the infallible CompletionSink::record contract cannot
        // surface io::Result; a spill-disk failure mid-run is fatal anyway
        let file = File::create(&path).expect("create spill run file");
        let mut w = BufWriter::new(file);
        for c in &self.buf {
            // lint: same infallible-record contract as File::create above
            w.write_all(&encode(c)).expect("write spill record");
        }
        // lint: same infallible-record contract as File::create above
        w.flush().expect("flush spill run file");
        self.runs.push(path);
        self.buf.clear();
    }

    /// Flushes the tail run and opens the k-way merge replay reader.
    pub fn finish(mut self) -> io::Result<SpillReader> {
        self.flush_run();
        SpillReader::open(std::mem::take(&mut self.runs))
    }
}

impl CompletionSink for SpillSink {
    fn record(&mut self, completion: Completion, _latency: Cycles) {
        self.buf.push(completion);
        self.recorded += 1;
        if self.buf.len() >= self.chunk {
            self.flush_run();
        }
    }
}

/// One open run in the merge: a buffered reader plus its lookahead.
struct RunCursor {
    reader: BufReader<File>,
}

impl RunCursor {
    fn next(&mut self) -> io::Result<Option<Completion>> {
        let mut rec = [0u8; RECORD_BYTES];
        match self.reader.read_exact(&mut rec) {
            Ok(()) => decode(&rec).map(Some),
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// Replays a [`SpillSink`]'s run files as one stream in global request-id
/// order (ids are unique per trace, so the merge order is total). Run
/// files are deleted when the reader drops.
pub struct SpillReader {
    cursors: Vec<RunCursor>,
    /// Min-heap of (id, run) lookaheads; the completion at the heap top
    /// is the globally next one.
    heads: BinaryHeap<Reverse<(u64, usize)>>,
    /// The buffered completion behind each heap entry.
    lookahead: Vec<Option<Completion>>,
    paths: Vec<PathBuf>,
}

impl SpillReader {
    fn open(paths: Vec<PathBuf>) -> io::Result<Self> {
        let mut cursors = Vec::with_capacity(paths.len());
        let mut heads = BinaryHeap::with_capacity(paths.len());
        let mut lookahead = Vec::with_capacity(paths.len());
        for (i, p) in paths.iter().enumerate() {
            let mut cur = RunCursor {
                reader: BufReader::new(File::open(p)?),
            };
            let head = cur.next()?;
            if let Some(c) = &head {
                heads.push(Reverse((c.request.id, i)));
            }
            lookahead.push(head);
            cursors.push(cur);
        }
        Ok(Self {
            cursors,
            heads,
            lookahead,
            paths,
        })
    }

    /// The next completion in global id order, or `None` at end of
    /// stream.
    pub fn try_next(&mut self) -> io::Result<Option<Completion>> {
        let Some(Reverse((_, run))) = self.heads.pop() else {
            return Ok(None);
        };
        let out = self.lookahead[run]
            .take()
            // lint: heads entries are pushed only alongside a Some lookahead
            .expect("heap entry always has a buffered completion");
        let refill = self.cursors[run].next()?;
        if let Some(c) = &refill {
            self.heads.push(Reverse((c.request.id, run)));
        }
        self.lookahead[run] = refill;
        Ok(out.into())
    }
}

impl Iterator for SpillReader {
    type Item = Completion;

    /// Iterator convenience over [`try_next`](SpillReader::try_next).
    ///
    /// # Panics
    ///
    /// Panics on I/O or format errors (use `try_next` to handle them).
    fn next(&mut self) -> Option<Completion> {
        // lint: documented panicking convenience; try_next is the fallible path
        self.try_next().expect("read spill run file")
    }
}

impl Drop for SpillReader {
    fn drop(&mut self) {
        for p in &self.paths {
            let _ = std::fs::remove_file(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn completion(id: u64, finish: f64) -> Completion {
        Completion {
            request: Request {
                id,
                dnn: DnnId::ALL[(id % DnnId::ALL.len() as u64) as usize],
                arrival: finish - 0.25,
                priority: (id % 11) as u32 + 1,
                qos: 0.125 * (id + 1) as f64,
            },
            finish,
            energy: Picojoules::new(1.5 * id as f64 + 0.0625),
        }
    }

    #[test]
    fn record_roundtrips_bit_exactly() {
        for id in [0, 1, 7, u64::MAX / 3] {
            let c = completion(id, 1.0 + id as f64 * 1e-3);
            let rec = encode(&c);
            assert_eq!(decode(&rec).expect("valid record"), c);
        }
    }

    #[test]
    fn decode_rejects_unknown_dnn() {
        let mut rec = encode(&completion(1, 1.0));
        rec[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode(&rec).is_err());
    }

    #[test]
    fn vec_sink_keeps_retirement_order() {
        let mut s = VecSink::default();
        s.record(completion(2, 1.0), Cycles::new(10));
        s.record(completion(1, 2.0), Cycles::new(20));
        assert_eq!(s.completions.len(), 2);
        assert_eq!(s.completions[0].request.id, 2);
    }

    #[test]
    fn sketch_sink_records_latency_cycles() {
        let mut s = SketchSink::default();
        s.record(completion(1, 1.0), Cycles::new(700));
        s.record(completion(2, 1.0), Cycles::new(1400));
        assert_eq!(s.sketch.count(), 2);
        assert_eq!(s.sketch.min(), Some(700));
    }

    #[test]
    fn spill_replays_in_global_id_order_across_runs() {
        let dir = std::env::temp_dir().join("planaria-sink-test-order");
        std::fs::create_dir_all(&dir).expect("create test dir");
        // Tiny chunk forces many runs; ids arrive in a shuffled
        // (retirement-like) order.
        let mut sink = SpillSink::with_chunk(&dir, 3);
        let ids: Vec<u64> = (0..50).map(|i| (i * 37) % 50).collect();
        for &id in &ids {
            sink.record(completion(id, 1.0 + id as f64), Cycles::new(id));
        }
        let replayed: Vec<Completion> = sink.finish().expect("open reader").collect();
        assert_eq!(replayed.len(), 50);
        for (i, c) in replayed.iter().enumerate() {
            assert_eq!(c.request.id, i as u64);
            assert_eq!(*c, completion(i as u64, 1.0 + i as f64));
        }
        // Run files are cleaned up by the reader's Drop.
        assert_eq!(
            std::fs::read_dir(&dir)
                .expect("dir readable")
                .filter_map(Result::ok)
                .count(),
            0
        );
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn empty_spill_replays_empty() {
        let dir = std::env::temp_dir().join("planaria-sink-test-empty");
        std::fs::create_dir_all(&dir).expect("create test dir");
        let sink = SpillSink::new(&dir);
        assert_eq!(sink.finish().expect("open reader").count(), 0);
        let _ = std::fs::remove_dir(&dir);
    }
}
