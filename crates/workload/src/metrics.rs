//! The paper's evaluation metrics (§VI-A).

use crate::qos::sla_percentile;
use crate::request::Completion;
use planaria_model::DnnId;
use planaria_parallel::{effective_jobs, par_map};
use std::collections::BTreeMap;

/// Fraction of requests that violated their QoS bound.
pub fn violation_rate(completions: &[Completion]) -> f64 {
    if completions.is_empty() {
        return 0.0;
    }
    let late = completions.iter().filter(|c| !c.met_qos()).count();
    late as f64 / completions.len() as f64
}

/// Whether a workload instance meets the MLPerf server SLA: per domain,
/// the required percentile of requests (99 % vision / 97 % translation)
/// finish within their QoS bound.
pub fn meets_sla(completions: &[Completion]) -> bool {
    let mut by_dnn: BTreeMap<DnnId, (usize, usize)> = BTreeMap::new();
    for c in completions {
        let e = by_dnn.entry(c.request.dnn).or_insert((0, 0));
        e.0 += 1;
        if c.met_qos() {
            e.1 += 1;
        }
    }
    by_dnn.iter().all(|(id, (total, met))| {
        // MLPerf's percentile with finite samples: the allowed miss count
        // is the rounded (1 - p) fraction of the sample.
        let allowed = ((1.0 - sla_percentile(*id)) * *total as f64).round() as usize;
        total - met <= allowed
    })
}

/// PREMA's fairness metric: `min_{i,j} PP_i / PP_j` where
/// `PP_i = (T_isolated / T_multitenant) / (priority_i / Σ priority)`.
///
/// `isolated` maps each network to its isolated-execution latency in
/// seconds on the *same* system.
///
/// Returns 1.0 for fewer than two completions (perfect fairness trivially).
pub fn fairness(completions: &[Completion], isolated: &BTreeMap<DnnId, f64>) -> f64 {
    if completions.len() < 2 {
        return 1.0;
    }
    let sum_priority: f64 = completions.iter().map(|c| c.request.priority as f64).sum();
    let pp: Vec<f64> = completions
        .iter()
        .map(|c| {
            let t_iso = isolated
                .get(&c.request.dnn)
                .copied()
                // lint: callers pass `isolated_latencies()`, which covers
                // every DnnId by construction
                .expect("isolated latency for every network");
            let progress = t_iso / c.latency().max(1e-12);
            let weight = c.request.priority as f64 / sum_priority;
            progress / weight
        })
        .collect();
    let min = pp.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = pp.iter().cloned().fold(0.0f64, f64::max);
    if max <= 0.0 {
        0.0
    } else {
        min / max
    }
}

/// SLA satisfaction rate (Fig. 13): the fraction of workload instances
/// (one per seed) whose completions meet the SLA. `run` simulates one
/// instance from a seed.
///
/// Seeds are independent simulations, so they fan out over the
/// deterministic [`planaria_parallel`] pool; the rate is a count over
/// index-ordered per-seed booleans and is identical at any job count.
pub fn sla_satisfaction_rate<F>(run: F, seeds: &[u64]) -> f64
where
    F: Fn(u64) -> Vec<Completion> + Sync,
{
    if seeds.is_empty() {
        return 0.0;
    }
    let ok = par_map(seeds.to_vec(), effective_jobs(), |s| meets_sla(&run(s)))
        .into_iter()
        .filter(|&b| b)
        .count();
    ok as f64 / seeds.len() as f64
}

/// Throughput (Fig. 12): the maximum arrival rate λ (queries/second) at
/// which every probe instance meets the SLA, located by bisection over
/// `[lo, hi]` with `iters` refinement steps. `run(lambda, seed)` simulates
/// one instance.
///
/// Returns `lo` when even the lowest rate fails — callers should treat a
/// result at `lo` as "does not meet the SLA at any probed rate" (the
/// paper's dash for PREMA on Workload-B, QoS-H).
///
/// The bisection itself is inherently sequential (each step depends on the
/// previous verdict), but the per-seed probe instances at one rate are
/// independent and fan out over the deterministic [`planaria_parallel`]
/// pool. The verdict is a conjunction over all seeds, so the search path —
/// and therefore the result — is bit-identical at any job count.
pub fn max_throughput<F>(run: F, seeds: &[u64], lo: f64, hi: f64, iters: u32) -> f64
where
    F: Fn(f64, u64) -> Vec<Completion> + Sync,
{
    assert!(lo > 0.0 && hi > lo, "invalid throughput search range");
    let ok_at = |lambda: f64| {
        par_map(seeds.to_vec(), effective_jobs(), |s| {
            meets_sla(&run(lambda, s))
        })
        .into_iter()
        .all(|ok| ok)
    };
    if !ok_at(lo) {
        return lo;
    }
    let (mut lo, mut hi) = (lo, hi);
    if ok_at(hi) {
        return hi;
    }
    for _ in 0..iters {
        let mid = (lo * hi).sqrt(); // geometric bisection: rates span decades
        if ok_at(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;

    fn completion(dnn: DnnId, priority: u32, latency: f64, qos: f64) -> Completion {
        Completion {
            request: Request {
                id: 0,
                dnn,
                arrival: 0.0,
                priority,
                qos,
            },
            finish: latency,
            energy: planaria_model::units::Picojoules::ZERO,
        }
    }

    #[test]
    fn violation_rate_counts_late_requests() {
        let cs = vec![
            completion(DnnId::ResNet50, 5, 0.01, 0.015),
            completion(DnnId::ResNet50, 5, 0.02, 0.015),
        ];
        assert!((violation_rate(&cs) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sla_allows_three_percent_gnmt_misses() {
        // 100 GNMT requests, 3 late: 97% => meets SLA.
        let mut cs: Vec<_> = (0..97)
            .map(|_| completion(DnnId::Gnmt, 5, 0.1, 0.25))
            .collect();
        cs.extend((0..3).map(|_| completion(DnnId::Gnmt, 5, 0.3, 0.25)));
        assert!(meets_sla(&cs));
        // A vision model with 3% late fails the 99% bar.
        let mut vs: Vec<_> = (0..97)
            .map(|_| completion(DnnId::ResNet50, 5, 0.01, 0.015))
            .collect();
        vs.extend((0..3).map(|_| completion(DnnId::ResNet50, 5, 0.02, 0.015)));
        assert!(!meets_sla(&vs));
    }

    #[test]
    fn fairness_is_one_for_proportional_progress() {
        let mut iso = BTreeMap::new();
        iso.insert(DnnId::ResNet50, 0.001);
        // Two equal-priority tasks slowed equally: perfectly fair.
        let cs = vec![
            completion(DnnId::ResNet50, 5, 0.002, 1.0),
            completion(DnnId::ResNet50, 5, 0.002, 1.0),
        ];
        assert!((fairness(&cs, &iso) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fairness_penalizes_starvation() {
        let mut iso = BTreeMap::new();
        iso.insert(DnnId::ResNet50, 0.001);
        let cs = vec![
            completion(DnnId::ResNet50, 5, 0.001, 1.0), // full speed
            completion(DnnId::ResNet50, 5, 0.100, 1.0), // starved 100x
        ];
        let f = fairness(&cs, &iso);
        assert!(f < 0.05, "got {f}");
    }

    #[test]
    fn throughput_search_finds_capacity() {
        // Synthetic system that meets SLA iff lambda <= 50.
        let run = |lambda: f64, _seed: u64| {
            let late = lambda > 50.0;
            vec![completion(
                DnnId::ResNet50,
                5,
                if late { 1.0 } else { 0.001 },
                0.015,
            )]
        };
        let thr = max_throughput(run, &[1, 2], 1.0, 1000.0, 30);
        assert!((thr - 50.0).abs() < 1.0, "got {thr}");
    }

    #[test]
    fn throughput_search_reports_floor_on_hopeless_systems() {
        let run = |_lambda: f64, _seed: u64| vec![completion(DnnId::ResNet50, 5, 1.0, 0.015)];
        let thr = max_throughput(run, &[1], 1.0, 1000.0, 10);
        assert!((thr - 1.0).abs() < 1e-12);
    }
}
