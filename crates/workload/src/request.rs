//! Inference requests and engine results — the vocabulary shared by the
//! Planaria and PREMA simulation engines and the metrics.

use planaria_model::units::{Cycles, Picojoules};
use planaria_model::DnnId;
use planaria_telemetry::CycleSketch;

/// One dispatched inference request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Unique id within a trace.
    pub id: u64,
    /// Network to run.
    pub dnn: DnnId,
    /// Arrival time, seconds.
    pub arrival: f64,
    /// Priority level, 1 (lowest) ..= 11 (highest), per the Google-trace
    /// analysis the paper cites (§VI-A).
    pub priority: u32,
    /// QoS latency bound, seconds.
    pub qos: f64,
}

impl Request {
    /// Absolute deadline (arrival + QoS bound), seconds.
    pub fn deadline(&self) -> f64 {
        self.arrival + self.qos
    }
}

/// A finished request as reported by an engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// The originating request.
    pub request: Request,
    /// Completion time, seconds.
    pub finish: f64,
    /// Dynamic energy attributed to this request.
    pub energy: Picojoules,
}

impl Completion {
    /// End-to-end (multi-tenant) latency, seconds.
    pub fn latency(&self) -> f64 {
        self.finish - self.request.arrival
    }

    /// Whether the request met its QoS bound.
    pub fn met_qos(&self) -> bool {
        self.latency() <= self.request.qos + 1e-12
    }
}

/// Full result of simulating one workload instance.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// All completions (same cardinality as the input trace).
    pub completions: Vec<Completion>,
    /// Total energy (dynamic + leakage over the makespan).
    pub total_energy: Picojoules,
    /// Time from first arrival to last completion, seconds.
    pub makespan: f64,
}

/// Version tag of the [`SimResult::digest`] format, carried in the top
/// byte of every digest value (see [`digest_version`]). Bump it whenever
/// the digest's *layout* changes — fields added/removed/reordered, the
/// hash function swapped — so a stored digest from another format can
/// never collide into a false "results changed" diagnosis.
///
/// History: version 1 is the untagged pre-overhaul format (count +
/// per-completion fields + aggregates, full 64-bit FNV); version 2 mixes
/// this tag first and reserves the top byte to carry it.
pub const DIGEST_VERSION: u8 = 2;

/// The format version a digest value was produced under. Compare this
/// *before* comparing digests: differing versions mean **the digest
/// format changed** (re-baseline and re-compare), while equal versions
/// with differing digests mean **the results changed** — the distinction
/// golden-digest failures should report.
pub fn digest_version(digest: u64) -> u8 {
    (digest >> 56) as u8
}

/// Streaming construction of [`SimResult::digest`]: feed the completion
/// count, then every completion in ascending request-id order, then the
/// aggregates. `digest()` itself is implemented on top of this, so a
/// replayed spill stream (`planaria_workload::sink::SpillReader`)
/// digests bit-identically to the materialized vector without ever
/// holding one.
#[derive(Debug, Clone)]
pub struct DigestBuilder {
    h: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl DigestBuilder {
    /// Starts a digest over a result with `count` completions (the count
    /// is mixed up front, after the version tag, so truncated streams
    /// can never digest equal to complete ones).
    pub fn new(count: u64) -> Self {
        let mut b = Self { h: FNV_OFFSET };
        b.mix(u64::from(DIGEST_VERSION));
        b.mix(count);
        b
    }

    fn mix(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.h ^= u64::from(byte);
            self.h = self.h.wrapping_mul(FNV_PRIME);
        }
    }

    /// Mixes one completion. Callers must feed completions in ascending
    /// request-id order — the digest is order-sensitive by design.
    pub fn completion(&mut self, c: &Completion) {
        let dnn = DnnId::ALL
            .iter()
            .position(|&d| d == c.request.dnn)
            // lint: ALL enumerates every DnnId variant by construction
            .expect("every DnnId appears in DnnId::ALL");
        self.mix(c.request.id);
        self.mix(dnn as u64);
        self.mix(c.request.arrival.to_bits());
        self.mix(u64::from(c.request.priority));
        self.mix(c.request.qos.to_bits());
        self.mix(c.finish.to_bits());
        self.mix(c.energy.as_pj().to_bits());
    }

    /// Mixes the aggregates and seals the digest: the top byte carries
    /// [`DIGEST_VERSION`], the low 56 bits the FNV state.
    pub fn finish(mut self, total_energy: Picojoules, makespan: f64) -> u64 {
        self.mix(total_energy.as_pj().to_bits());
        self.mix(makespan.to_bits());
        (u64::from(DIGEST_VERSION) << 56) | (self.h & ((1 << 56) - 1))
    }
}

impl SimResult {
    /// Order-sensitive FNV-1a digest over the bit-exact content of the
    /// result: every completion's id, network, arrival, priority, QoS
    /// bound, finish time and energy, plus the aggregate energy and
    /// makespan. Two results digest equal iff they are byte-identical,
    /// which is how the determinism tests and the cluster bench assert
    /// that a parallel fabric run reproduces the serial run exactly.
    ///
    /// The top byte of the value is the [`DIGEST_VERSION`] format tag:
    /// on a mismatch against a stored digest, check
    /// [`digest_version`] first to report "digest format changed"
    /// rather than "results changed".
    pub fn digest(&self) -> u64 {
        let mut b = DigestBuilder::new(self.completions.len() as u64);
        for c in &self.completions {
            b.completion(c);
        }
        b.finish(self.total_energy, self.makespan)
    }

    /// Mean end-to-end latency, seconds.
    pub fn mean_latency(&self) -> f64 {
        if self.completions.is_empty() {
            return 0.0;
        }
        self.completions
            .iter()
            .map(Completion::latency)
            .sum::<f64>()
            / self.completions.len() as f64
    }

    /// Latency at percentile `p` ∈ [0, 1] (nearest-rank), seconds — the
    /// MLPerf server scenario reports p99. `None` for an empty result:
    /// a run that completed nothing has no percentile, and silently
    /// reporting `0.0` (a perfect latency) used to mask exactly that
    /// failure in sweep tables.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside [0, 1].
    pub fn percentile_latency(&self, p: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&p), "percentile must be in [0, 1]");
        if self.completions.is_empty() {
            return None;
        }
        let mut lats: Vec<f64> = self.completions.iter().map(Completion::latency).collect();
        lats.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let rank = ((p * lats.len() as f64).ceil() as usize).clamp(1, lats.len());
        Some(lats[rank - 1])
    }

    /// Exact latency summary of this result (the materialized oracle).
    pub fn latency_stats(&self) -> Option<LatencyStats> {
        LatencyStats::from_completions(&self.completions)
    }
}

/// A latency summary in seconds, computable two ways: exactly from a
/// materialized completion vector (the nearest-rank oracle), or from a
/// streaming [`CycleSketch`] when completions were never kept — in which
/// case each percentile over-reports by at most `1/32` relative (the
/// sketch's bucket bound) and the mean is exact up to f64 rounding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Number of completions summarized.
    pub count: u64,
    /// Mean end-to-end latency, seconds.
    pub mean: f64,
    /// Median (nearest-rank p50), seconds.
    pub p50: f64,
    /// Tail latency (nearest-rank p99), seconds.
    pub p99: f64,
    /// Slowest completion, seconds.
    pub max: f64,
}

impl LatencyStats {
    /// Exact stats from materialized completions; `None` when empty.
    pub fn from_completions(completions: &[Completion]) -> Option<Self> {
        if completions.is_empty() {
            return None;
        }
        let mut lats: Vec<f64> = completions.iter().map(Completion::latency).collect();
        lats.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = lats.len();
        let rank = |p: f64| lats[((p * n as f64).ceil() as usize).clamp(1, n) - 1];
        Some(Self {
            count: n as u64,
            mean: lats.iter().sum::<f64>() / n as f64,
            p50: rank(0.50),
            p99: rank(0.99),
            max: lats[n - 1],
        })
    }

    /// Stats from a streaming sketch of integer latency cycles recorded
    /// at `freq_hz`; `None` when the sketch is empty. Percentiles carry
    /// the sketch's documented `≤ 1/32` relative over-report bound.
    pub fn from_sketch(sketch: &CycleSketch, freq_hz: f64) -> Option<Self> {
        let secs = |v: u64| Cycles::new(v).seconds_at(freq_hz);
        Some(Self {
            count: sketch.count(),
            mean: sketch.mean()? / freq_hz,
            p50: secs(sketch.value_at_ratio(50, 100)?),
            p99: secs(sketch.value_at_ratio(99, 100)?),
            max: secs(sketch.max()?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(arrival: f64, qos: f64) -> Request {
        Request {
            id: 0,
            dnn: DnnId::ResNet50,
            arrival,
            priority: 5,
            qos,
        }
    }

    #[test]
    fn percentile_latency_nearest_rank() {
        let mk = |latency: f64| Completion {
            request: req(0.0, 1.0),
            finish: latency,
            energy: Picojoules::ZERO,
        };
        let r = crate::request::SimResult {
            completions: (1..=100).map(|i| mk(i as f64 / 1000.0)).collect(),
            total_energy: Picojoules::ZERO,
            makespan: 1.0,
        };
        let p = |p: f64| r.percentile_latency(p).expect("non-empty");
        assert!((p(0.99) - 0.099).abs() < 1e-12);
        assert!((p(0.5) - 0.050).abs() < 1e-12);
        assert!((p(1.0) - 0.100).abs() < 1e-12);
        assert!((p(0.0) - 0.001).abs() < 1e-12);
    }

    #[test]
    fn empty_result_has_no_percentile() {
        let empty = SimResult {
            completions: Vec::new(),
            total_energy: Picojoules::ZERO,
            makespan: 0.0,
        };
        assert_eq!(empty.percentile_latency(0.99), None);
        assert_eq!(empty.latency_stats(), None);
    }

    #[test]
    fn latency_stats_from_sketch_tracks_oracle() {
        let freq = 1e9;
        let mk = |latency: f64| Completion {
            request: req(0.0, 1.0),
            finish: latency,
            energy: Picojoules::ZERO,
        };
        let completions: Vec<Completion> = (1..=200).map(|i| mk(i as f64 * 1e-4)).collect();
        let exact = LatencyStats::from_completions(&completions).expect("non-empty");
        let mut sketch = CycleSketch::new();
        for c in &completions {
            sketch.record((c.latency() * freq).round() as u64);
        }
        let approx = LatencyStats::from_sketch(&sketch, freq).expect("non-empty");
        assert_eq!(approx.count, exact.count);
        assert!((approx.mean - exact.mean).abs() / exact.mean < 1e-9);
        for (a, e) in [(approx.p50, exact.p50), (approx.p99, exact.p99)] {
            assert!(a >= e - 1e-12, "sketch {a} under oracle {e}");
            assert!(
                a <= e * (1.0 + 1.0 / 32.0) + 1e-9,
                "sketch {a} above bound for {e}"
            );
        }
    }

    #[test]
    fn digest_distinguishes_bitwise_differences() {
        let mk = |finish: f64| Completion {
            request: req(0.0, 1.0),
            finish,
            energy: Picojoules::ZERO,
        };
        let base = SimResult {
            completions: vec![mk(0.010), mk(0.020)],
            total_energy: Picojoules::new(5.0),
            makespan: 0.020,
        };
        assert_eq!(base.digest(), base.clone().digest());
        let mut late = base.clone();
        late.completions[1].finish = 0.020 + f64::EPSILON;
        assert_ne!(base.digest(), late.digest());
        let mut reordered = base.clone();
        reordered.completions.swap(0, 1);
        assert_ne!(base.digest(), reordered.digest());
        let mut hotter = base.clone();
        hotter.total_energy = Picojoules::new(5.0 + f64::EPSILON * 8.0);
        assert_ne!(base.digest(), hotter.digest());
    }

    #[test]
    fn digest_carries_the_format_version() {
        let r = SimResult {
            completions: vec![Completion {
                request: req(0.0, 1.0),
                finish: 0.010,
                energy: Picojoules::ZERO,
            }],
            total_energy: Picojoules::new(5.0),
            makespan: 0.010,
        };
        assert_eq!(digest_version(r.digest()), DIGEST_VERSION);
        // Result differences move the digest but never the version byte.
        let mut other = r.clone();
        other.makespan = 0.011;
        assert_ne!(r.digest(), other.digest());
        assert_eq!(digest_version(other.digest()), DIGEST_VERSION);
    }

    #[test]
    fn streaming_builder_matches_digest() {
        let mk = |id: u64| Completion {
            request: Request {
                id,
                ..req(0.0, 1.0)
            },
            finish: 0.010 * (id + 1) as f64,
            energy: Picojoules::new(id as f64),
        };
        let r = SimResult {
            completions: (0..5).map(mk).collect(),
            total_energy: Picojoules::new(17.0),
            makespan: 0.050,
        };
        let mut b = DigestBuilder::new(r.completions.len() as u64);
        for c in &r.completions {
            b.completion(c);
        }
        assert_eq!(b.finish(r.total_energy, r.makespan), r.digest());
    }

    #[test]
    fn deadline_and_latency() {
        let r = req(1.0, 0.015);
        assert!((r.deadline() - 1.015).abs() < 1e-12);
        let c = Completion {
            request: r,
            finish: 1.010,
            energy: Picojoules::ZERO,
        };
        assert!((c.latency() - 0.010).abs() < 1e-12);
        assert!(c.met_qos());
        let late = Completion {
            request: r,
            finish: 1.020,
            energy: Picojoules::ZERO,
        };
        assert!(!late.met_qos());
    }
}
