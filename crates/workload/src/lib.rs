//! INFaaS multi-tenant workloads and evaluation metrics (§VI-A).
//!
//! This crate generates the paper's three workload scenarios and computes
//! its four evaluation metrics:
//!
//! * **Throughput** — the maximum Poisson arrival rate (queries/second)
//!   at which the system still satisfies the MLPerf server SLA
//!   (99 % of vision tasks, 97 % of translation tasks within their QoS
//!   latency bound), found by binary search;
//! * **SLA satisfaction rate** — the fraction of workload instances meeting
//!   that SLA at a fixed arrival rate;
//! * **Fairness** — PREMA's min-ratio progress metric
//!   `min_{i,j} PP_i / PP_j` with
//!   `PP_i = (T_isolated / T_multitenant) / (priority_i / Σ priority)`;
//! * **Energy** — total joules per workload (computed by the engines;
//!   aggregated here).
//!
//! # Example
//!
//! ```
//! use planaria_workload::{QosLevel, Scenario, TraceConfig};
//!
//! let trace = TraceConfig::new(Scenario::C, QosLevel::Medium, 40.0, 64, 7).generate();
//! assert_eq!(trace.len(), 64);
//! assert!(trace.windows(2).all(|w| w[0].arrival <= w[1].arrival));
//! ```

pub mod metrics;
pub mod qos;
pub mod request;
pub mod sink;
pub mod trace;

pub use metrics::{fairness, max_throughput, meets_sla, sla_satisfaction_rate, violation_rate};
pub use qos::{qos_bound, QosLevel};
pub use request::{
    digest_version, Completion, DigestBuilder, LatencyStats, Request, SimResult, DIGEST_VERSION,
};
pub use sink::{CompletionSink, DiscardSink, SketchSink, SpillReader, SpillSink, VecSink};
pub use trace::{Scenario, TraceConfig, TraceStream};
