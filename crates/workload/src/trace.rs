//! Trace generation: the three workload scenarios with Poisson arrivals
//! and uniform priorities (§VI-A).

use crate::qos::{qos_bound, QosLevel};
use crate::request::Request;
use planaria_model::{DnnId, SplitMix64};
use std::fmt;

/// Workload scenario of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scenario {
    /// Heavier models (ResNet-50, GoogLeNet, YOLOv3, SSD-R, GNMT).
    A,
    /// Lighter models (EfficientNet-B0, MobileNet-v1, SSD-M, Tiny YOLO).
    B,
    /// All nine models.
    C,
}

impl Scenario {
    /// All three scenarios.
    pub const ALL: [Scenario; 3] = [Scenario::A, Scenario::B, Scenario::C];

    /// Member networks.
    pub fn members(&self) -> Vec<DnnId> {
        match self {
            Scenario::A => DnnId::workload_a().collect(),
            Scenario::B => DnnId::workload_b().collect(),
            Scenario::C => DnnId::workload_c().collect(),
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Workload-{:?}", self)
    }
}

/// Parameters of one generated trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Scenario to draw request types from (uniformly).
    pub scenario: Scenario,
    /// QoS difficulty.
    pub qos: QosLevel,
    /// Mean arrival rate, queries/second (the Poisson λ).
    pub lambda_qps: f64,
    /// Number of requests.
    pub requests: usize,
    /// RNG seed (traces are fully deterministic given the seed).
    pub seed: u64,
    /// Burstiness factor `b ≥ 1`: 1 is a pure Poisson process; larger
    /// values produce a two-state modulated process whose *burst* state
    /// arrives `b×` faster (datacenter traffic is bursty — an extension
    /// study beyond the paper's plain Poisson methodology). The long-run
    /// mean rate stays `lambda_qps`.
    pub burstiness: f64,
}

impl TraceConfig {
    /// Creates a trace configuration.
    ///
    /// # Panics
    ///
    /// Panics if `lambda_qps` is not positive or `requests` is zero.
    pub fn new(
        scenario: Scenario,
        qos: QosLevel,
        lambda_qps: f64,
        requests: usize,
        seed: u64,
    ) -> Self {
        assert!(lambda_qps > 0.0, "arrival rate must be positive");
        assert!(requests > 0, "trace must contain requests");
        Self {
            scenario,
            qos,
            lambda_qps,
            requests,
            seed,
            burstiness: 1.0,
        }
    }

    /// Returns the configuration with a burstiness factor (see the field
    /// docs).
    ///
    /// # Panics
    ///
    /// Panics unless `1.0 <= b <= 16.0`.
    pub fn with_burstiness(mut self, b: f64) -> Self {
        assert!((1.0..=16.0).contains(&b), "burstiness must be in [1, 16]");
        self.burstiness = b;
        self
    }

    /// Generates the trace: exponential inter-arrival gaps (Poisson
    /// process), request types uniform over the scenario's members,
    /// priorities uniform in 1..=11.
    pub fn generate(&self) -> Vec<Request> {
        let mut rng = SplitMix64::new(self.seed);
        let members = self.scenario.members();
        let mut t = 0.0f64;
        // Two-state modulated process: half the requests arrive in bursts
        // at `b·λ`, the other half in calm stretches at a rate chosen so
        // the harmonic mean of the gap lengths keeps the long-run rate at
        // λ: 1/λ = ½/λ_burst + ½/λ_calm. State dwell is geometric with a
        // mean of 20 requests.
        const SWITCH_PROB: f64 = 0.05;
        let rate_burst = self.lambda_qps * self.burstiness;
        let rate_calm = self.lambda_qps / (2.0 - 1.0 / self.burstiness);
        let mut bursting = false;
        (0..self.requests)
            .map(|i| {
                if self.burstiness > 1.0 && rng.next_bool(SWITCH_PROB) {
                    bursting = !bursting;
                }
                let rate = if bursting { rate_burst } else { rate_calm };
                // Inverse-CDF exponential sampling on the open interval.
                t += rng.next_exp(rate);
                let dnn = members[rng.next_below(members.len() as u64) as usize];
                Request {
                    id: i as u64,
                    dnn,
                    arrival: t,
                    priority: rng.next_range(1, 11) as u32,
                    qos: qos_bound(dnn, self.qos),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_per_seed() {
        let c = TraceConfig::new(Scenario::C, QosLevel::Soft, 100.0, 50, 42);
        assert_eq!(c.generate(), c.generate());
        let other = TraceConfig { seed: 43, ..c }.generate();
        assert_ne!(c.generate(), other);
    }

    #[test]
    fn arrivals_are_sorted_and_rate_is_close() {
        let c = TraceConfig::new(Scenario::A, QosLevel::Soft, 200.0, 2000, 1);
        let trace = c.generate();
        assert!(trace.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        let span = trace.last().unwrap().arrival - trace[0].arrival;
        let rate = (trace.len() - 1) as f64 / span;
        assert!((rate / 200.0 - 1.0).abs() < 0.15, "empirical rate {rate}");
    }

    #[test]
    fn priorities_cover_the_full_range() {
        let trace = TraceConfig::new(Scenario::C, QosLevel::Soft, 10.0, 3000, 9).generate();
        let min = trace.iter().map(|r| r.priority).min().unwrap();
        let max = trace.iter().map(|r| r.priority).max().unwrap();
        assert_eq!(min, 1);
        assert_eq!(max, 11);
    }

    #[test]
    fn scenario_members_only() {
        let trace = TraceConfig::new(Scenario::B, QosLevel::Hard, 10.0, 500, 3).generate();
        let members = Scenario::B.members();
        assert!(trace.iter().all(|r| members.contains(&r.dnn)));
    }

    #[test]
    fn bursty_traces_keep_mean_rate_but_raise_variance() {
        let base = TraceConfig::new(Scenario::C, QosLevel::Soft, 100.0, 8000, 3);
        let calm = base.generate();
        let bursty = base.with_burstiness(4.0).generate();
        let rate = |t: &[crate::request::Request]| {
            (t.len() - 1) as f64 / (t.last().unwrap().arrival - t[0].arrival)
        };
        assert!(
            (rate(&calm) / 100.0 - 1.0).abs() < 0.15,
            "calm {}",
            rate(&calm)
        );
        assert!(
            (rate(&bursty) / 100.0 - 1.0).abs() < 0.30,
            "bursty {}",
            rate(&bursty)
        );
        // Squared coefficient of variation of inter-arrival gaps: 1 for
        // Poisson, substantially larger when bursty.
        let cv2 = |t: &[crate::request::Request]| {
            let gaps: Vec<f64> = t.windows(2).map(|w| w[1].arrival - w[0].arrival).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        assert!(cv2(&calm) < 1.3, "calm cv2 {}", cv2(&calm));
        assert!(cv2(&bursty) > 1.6, "bursty cv2 {}", cv2(&bursty));
    }

    #[test]
    #[should_panic(expected = "burstiness")]
    fn burstiness_bounds_enforced() {
        let _ = TraceConfig::new(Scenario::A, QosLevel::Soft, 10.0, 10, 1).with_burstiness(99.0);
    }

    #[test]
    fn qos_follows_level() {
        let trace = TraceConfig::new(Scenario::A, QosLevel::Hard, 10.0, 100, 5).generate();
        for r in &trace {
            assert!((r.qos - qos_bound(r.dnn, QosLevel::Hard)).abs() < 1e-12);
        }
    }
}
