//! Trace generation: the three workload scenarios with Poisson arrivals
//! and uniform priorities (§VI-A).

use crate::qos::{qos_bound, QosLevel};
use crate::request::Request;
use planaria_model::{DnnId, SplitMix64};
use std::fmt;

/// Workload scenario of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scenario {
    /// Heavier models (ResNet-50, GoogLeNet, YOLOv3, SSD-R, GNMT).
    A,
    /// Lighter models (EfficientNet-B0, MobileNet-v1, SSD-M, Tiny YOLO).
    B,
    /// All nine models.
    C,
}

impl Scenario {
    /// All three scenarios.
    pub const ALL: [Scenario; 3] = [Scenario::A, Scenario::B, Scenario::C];

    /// Member networks.
    pub fn members(&self) -> Vec<DnnId> {
        match self {
            Scenario::A => DnnId::workload_a().collect(),
            Scenario::B => DnnId::workload_b().collect(),
            Scenario::C => DnnId::workload_c().collect(),
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Workload-{:?}", self)
    }
}

/// Parameters of one generated trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Scenario to draw request types from (uniformly).
    pub scenario: Scenario,
    /// QoS difficulty.
    pub qos: QosLevel,
    /// Mean arrival rate, queries/second (the Poisson λ).
    pub lambda_qps: f64,
    /// Number of requests.
    pub requests: usize,
    /// RNG seed (traces are fully deterministic given the seed).
    pub seed: u64,
    /// Burstiness factor `b ≥ 1`: 1 is a pure Poisson process; larger
    /// values produce a two-state modulated process whose *burst* state
    /// arrives `b×` faster (datacenter traffic is bursty — an extension
    /// study beyond the paper's plain Poisson methodology). The long-run
    /// mean rate stays `lambda_qps`.
    pub burstiness: f64,
}

impl TraceConfig {
    /// Creates a trace configuration.
    ///
    /// # Panics
    ///
    /// Panics if `lambda_qps` is not positive or `requests` is zero.
    pub fn new(
        scenario: Scenario,
        qos: QosLevel,
        lambda_qps: f64,
        requests: usize,
        seed: u64,
    ) -> Self {
        assert!(lambda_qps > 0.0, "arrival rate must be positive");
        assert!(requests > 0, "trace must contain requests");
        Self {
            scenario,
            qos,
            lambda_qps,
            requests,
            seed,
            burstiness: 1.0,
        }
    }

    /// Returns the configuration with a burstiness factor (see the field
    /// docs).
    ///
    /// # Panics
    ///
    /// Panics unless `1.0 <= b <= 16.0`.
    pub fn with_burstiness(mut self, b: f64) -> Self {
        assert!((1.0..=16.0).contains(&b), "burstiness must be in [1, 16]");
        self.burstiness = b;
        self
    }

    /// Generates the trace: exponential inter-arrival gaps (Poisson
    /// process), request types uniform over the scenario's members,
    /// priorities uniform in 1..=11.
    ///
    /// Definitionally equal to [`stream`](Self::stream)`().collect()` —
    /// the materialized and streamed paths share one generator, so they
    /// cannot drift apart.
    pub fn generate(&self) -> Vec<Request> {
        self.stream().collect()
    }

    /// A pull-based request generator: the same deterministic sequence as
    /// [`generate`](Self::generate), produced one request at a time so a
    /// million-request trace never has to be resident in memory. The
    /// simulation kernel consumes this lazily (it keeps exactly one
    /// not-yet-due arrival outstanding), giving O(live tenants) — not
    /// O(requests) — resident request state.
    pub fn stream(&self) -> TraceStream {
        TraceStream {
            rng: SplitMix64::new(self.seed),
            members: self.scenario.members(),
            qos: self.qos,
            burstiness: self.burstiness,
            rate_burst: self.lambda_qps * self.burstiness,
            rate_calm: self.lambda_qps / (2.0 - 1.0 / self.burstiness),
            bursting: false,
            t: 0.0,
            next: 0,
            requests: self.requests,
        }
    }
}

/// Lazy request generator for one [`TraceConfig`] (see
/// [`TraceConfig::stream`]).
///
/// Two-state modulated Poisson process: half the requests arrive in
/// bursts at `b·λ`, the other half in calm stretches at a rate chosen so
/// the harmonic mean of the gap lengths keeps the long-run rate at λ:
/// `1/λ = ½/λ_burst + ½/λ_calm`. State dwell is geometric with a mean of
/// 20 requests. With `b = 1` this degenerates to a pure Poisson process.
#[derive(Debug, Clone)]
pub struct TraceStream {
    rng: SplitMix64,
    members: Vec<DnnId>,
    qos: QosLevel,
    burstiness: f64,
    rate_burst: f64,
    rate_calm: f64,
    bursting: bool,
    /// Absolute time of the last emitted arrival, seconds.
    t: f64,
    /// Next request id to emit.
    next: usize,
    /// Total requests this stream will emit.
    requests: usize,
}

/// Probability per request of flipping the burst/calm state.
const SWITCH_PROB: f64 = 0.05;

impl TraceStream {
    /// Requests not yet emitted.
    pub fn remaining(&self) -> usize {
        self.requests - self.next
    }
}

impl Iterator for TraceStream {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        if self.next >= self.requests {
            return None;
        }
        if self.burstiness > 1.0 && self.rng.next_bool(SWITCH_PROB) {
            self.bursting = !self.bursting;
        }
        let rate = if self.bursting {
            self.rate_burst
        } else {
            self.rate_calm
        };
        // Inverse-CDF exponential sampling on the open interval.
        self.t += self.rng.next_exp(rate);
        let dnn = self.members[self.rng.next_below(self.members.len() as u64) as usize];
        let id = self.next as u64;
        self.next += 1;
        Some(Request {
            id,
            dnn,
            arrival: self.t,
            priority: self.rng.next_range(1, 11) as u32,
            qos: qos_bound(dnn, self.qos),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

impl ExactSizeIterator for TraceStream {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_equals_generate_across_the_grid() {
        // The materialized and streamed paths must be bit-identical for
        // every scenario × burstiness × seed cell (definitional since
        // `generate` is `stream().collect()`, but pinned here so a future
        // bespoke `generate` cannot silently fork the sequence).
        for scenario in Scenario::ALL {
            for qos in [QosLevel::Soft, QosLevel::Hard] {
                for burstiness in [1.0, 2.0, 8.0] {
                    for seed in [1u64, 42, 0xdead_beef] {
                        let c = TraceConfig::new(scenario, qos, 120.0, 300, seed)
                            .with_burstiness(burstiness);
                        let materialized = c.generate();
                        let streamed: Vec<Request> = c.stream().collect();
                        assert_eq!(
                            materialized, streamed,
                            "{scenario} {qos:?} b={burstiness} seed={seed}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn stream_is_lazy_and_sized() {
        let c = TraceConfig::new(Scenario::B, QosLevel::Soft, 50.0, 1000, 7);
        let mut s = c.stream();
        assert_eq!(s.len(), 1000);
        assert_eq!(s.remaining(), 1000);
        let first = s.next().expect("first request");
        assert_eq!(first.id, 0);
        assert_eq!(s.remaining(), 999);
        assert_eq!(s.size_hint(), (999, Some(999)));
        // Pulling the rest matches the tail of the materialized trace.
        let rest: Vec<Request> = s.collect();
        let full = c.generate();
        assert_eq!(&full[1..], rest.as_slice());
        assert_eq!(full[0], first);
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        let c = TraceConfig::new(Scenario::C, QosLevel::Soft, 100.0, 50, 42);
        assert_eq!(c.generate(), c.generate());
        let other = TraceConfig { seed: 43, ..c }.generate();
        assert_ne!(c.generate(), other);
    }

    #[test]
    fn arrivals_are_sorted_and_rate_is_close() {
        let c = TraceConfig::new(Scenario::A, QosLevel::Soft, 200.0, 2000, 1);
        let trace = c.generate();
        assert!(trace.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        let span = trace.last().unwrap().arrival - trace[0].arrival;
        let rate = (trace.len() - 1) as f64 / span;
        assert!((rate / 200.0 - 1.0).abs() < 0.15, "empirical rate {rate}");
    }

    #[test]
    fn priorities_cover_the_full_range() {
        let trace = TraceConfig::new(Scenario::C, QosLevel::Soft, 10.0, 3000, 9).generate();
        let min = trace.iter().map(|r| r.priority).min().unwrap();
        let max = trace.iter().map(|r| r.priority).max().unwrap();
        assert_eq!(min, 1);
        assert_eq!(max, 11);
    }

    #[test]
    fn scenario_members_only() {
        let trace = TraceConfig::new(Scenario::B, QosLevel::Hard, 10.0, 500, 3).generate();
        let members = Scenario::B.members();
        assert!(trace.iter().all(|r| members.contains(&r.dnn)));
    }

    #[test]
    fn bursty_traces_keep_mean_rate_but_raise_variance() {
        let base = TraceConfig::new(Scenario::C, QosLevel::Soft, 100.0, 8000, 3);
        let calm = base.generate();
        let bursty = base.with_burstiness(4.0).generate();
        let rate = |t: &[crate::request::Request]| {
            (t.len() - 1) as f64 / (t.last().unwrap().arrival - t[0].arrival)
        };
        assert!(
            (rate(&calm) / 100.0 - 1.0).abs() < 0.15,
            "calm {}",
            rate(&calm)
        );
        assert!(
            (rate(&bursty) / 100.0 - 1.0).abs() < 0.30,
            "bursty {}",
            rate(&bursty)
        );
        // Squared coefficient of variation of inter-arrival gaps: 1 for
        // Poisson, substantially larger when bursty.
        let cv2 = |t: &[crate::request::Request]| {
            let gaps: Vec<f64> = t.windows(2).map(|w| w[1].arrival - w[0].arrival).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        assert!(cv2(&calm) < 1.3, "calm cv2 {}", cv2(&calm));
        assert!(cv2(&bursty) > 1.6, "bursty cv2 {}", cv2(&bursty));
    }

    #[test]
    #[should_panic(expected = "burstiness")]
    fn burstiness_bounds_enforced() {
        let _ = TraceConfig::new(Scenario::A, QosLevel::Soft, 10.0, 10, 1).with_burstiness(99.0);
    }

    #[test]
    fn qos_follows_level() {
        let trace = TraceConfig::new(Scenario::A, QosLevel::Hard, 10.0, 100, 5).generate();
        for r in &trace {
            assert!((r.qos - qos_bound(r.dnn, QosLevel::Hard)).abs() < 1e-12);
        }
    }
}
