//! QoS latency bounds.
//!
//! Base bounds follow the MLPerf Inference v0.5 server-scenario latency
//! targets for the models MLPerf covers (ResNet-50 / MobileNet 15 ms and
//! 10 ms, SSD variants 100 ms and 10 ms, GNMT 250 ms) and domain-analogous
//! targets for the remaining benchmarks. The paper then derives three
//! difficulty levels (§VI-A): QoS-S = 1×, QoS-M = ¼×, QoS-H = 1/16× the
//! base bound.

use planaria_model::DnnId;
use std::fmt;

/// QoS difficulty level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QosLevel {
    /// 1× the MLPerf bound.
    Soft,
    /// ¼× the MLPerf bound.
    Medium,
    /// 1/16× the MLPerf bound.
    Hard,
}

impl QosLevel {
    /// All three levels in the paper's order.
    pub const ALL: [QosLevel; 3] = [QosLevel::Soft, QosLevel::Medium, QosLevel::Hard];

    /// Multiplier applied to the base bound.
    pub fn factor(&self) -> f64 {
        match self {
            QosLevel::Soft => 1.0,
            QosLevel::Medium => 0.25,
            QosLevel::Hard => 1.0 / 16.0,
        }
    }

    /// Short label used in tables ("QoS-S" etc.).
    pub fn label(&self) -> &'static str {
        match self {
            QosLevel::Soft => "QoS-S",
            QosLevel::Medium => "QoS-M",
            QosLevel::Hard => "QoS-H",
        }
    }
}

impl fmt::Display for QosLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Base (QoS-S) latency bound in seconds for one network.
///
/// MLPerf v0.5 magnitudes where the model is covered (ResNet-50 15 ms,
/// SSD-large 100 ms, GNMT 250 ms); analogous bounds for the rest, chosen so
/// that every benchmark is feasible in isolation on the monolithic baseline
/// at QoS-M — a property the paper's results imply, since PREMA achieves
/// non-zero throughput at QoS-M on every workload except Workload-B's
/// depthwise-dominated hard settings.
pub fn base_bound(id: DnnId) -> f64 {
    match id {
        DnnId::ResNet50 | DnnId::GoogLeNet => 0.015,
        DnnId::MobileNetV1 => 0.025,
        DnnId::EfficientNetB0 => 0.030,
        DnnId::SsdMobileNet => 0.045,
        DnnId::TinyYolo => 0.010,
        DnnId::SsdResNet34 | DnnId::YoloV3 => 0.100,
        DnnId::Gnmt => 0.250,
    }
}

/// QoS latency bound in seconds for a network at a difficulty level.
pub fn qos_bound(id: DnnId, level: QosLevel) -> f64 {
    base_bound(id) * level.factor()
}

/// The MLPerf server-scenario SLA percentile for a network's domain:
/// 99 % for vision tasks, 97 % for translation (§VI-A).
pub fn sla_percentile(id: DnnId) -> f64 {
    match id.domain() {
        planaria_model::Domain::MachineTranslation => 0.97,
        _ => 0.99,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_scale_down_sixteenfold() {
        for id in DnnId::ALL {
            let s = qos_bound(id, QosLevel::Soft);
            let h = qos_bound(id, QosLevel::Hard);
            assert!((s / h - 16.0).abs() < 1e-9, "{id}");
        }
    }

    #[test]
    fn gnmt_gets_translation_percentile() {
        assert!((sla_percentile(DnnId::Gnmt) - 0.97).abs() < 1e-12);
        assert!((sla_percentile(DnnId::ResNet50) - 0.99).abs() < 1e-12);
    }

    #[test]
    fn heavy_detectors_get_loose_bounds() {
        assert!(base_bound(DnnId::SsdResNet34) > base_bound(DnnId::SsdMobileNet));
        assert!(base_bound(DnnId::Gnmt) > base_bound(DnnId::ResNet50));
    }
}
