//! Equivalence proof for the compiler's shape-keyed memoization: the memo
//! must be a pure cache, i.e. compiling with it on or off yields
//! bit-identical `CompiledDnn` artifacts for every benchmark network.

use planaria_arch::AcceleratorConfig;
use planaria_compiler::{compile, compile_uncached, TimingMemo};
use planaria_energy::EnergyModel;
use planaria_model::{ConvSpec, DnnId, LayerOp};
use planaria_timing::ExecContext;

#[test]
fn compile_memoized_equals_unmemoized() {
    let cfg = AcceleratorConfig::planaria();
    for id in DnnId::ALL {
        let dnn = id.build();
        let memoized = compile(&cfg, &dnn);
        let uncached = compile_uncached(&cfg, &dnn);
        assert_eq!(
            memoized, uncached,
            "{id:?}: memoized compilation diverged from the reference"
        );
    }
}

#[test]
fn compile_memoized_equals_unmemoized_monolithic() {
    let cfg = AcceleratorConfig::monolithic();
    for id in DnnId::ALL {
        let dnn = id.build();
        assert_eq!(compile(&cfg, &dnn), compile_uncached(&cfg, &dnn), "{id:?}");
    }
}

#[test]
fn memo_actually_hits_on_repeated_shapes() {
    // ResNet-50 repeats its residual-stage shapes dozens of times; the
    // memo must turn those repetitions into lookups.
    let cfg = AcceleratorConfig::planaria();
    let dnn = DnnId::ResNet50.build();
    let ctx = ExecContext::full_chip(&cfg);
    let em = EnergyModel::for_config(&cfg);
    let mut memo = TimingMemo::new(&cfg);
    for layer in dnn.layers().iter().filter(|l| l.op.is_systolic()) {
        let _ = memo.select(&ctx, &em, &layer.op, 1.02);
    }
    assert!(
        memo.hits() > 0,
        "ResNet-50 has repeated layer shapes; the memo must hit"
    );
}

#[test]
fn distinct_shapes_do_not_collide() {
    let cfg = AcceleratorConfig::planaria();
    let ctx = ExecContext::full_chip(&cfg);
    let em = EnergyModel::for_config(&cfg);
    let mut memo = TimingMemo::new(&cfg);
    let a = LayerOp::Conv(ConvSpec::new(64, 64, 3, 3, 1, 1, 28, 28));
    let b = LayerOp::Conv(ConvSpec::new(64, 128, 3, 3, 1, 1, 28, 28));
    let (arr_a, t_a, _) = memo.select(&ctx, &em, &a, 1.02);
    let (arr_b, t_b, _) = memo.select(&ctx, &em, &b, 1.02);
    // Different shapes must be cached under different keys — re-querying
    // returns each shape's own result, not the other's.
    assert_eq!(
        memo.select(&ctx, &em, &a, 1.02),
        (arr_a, t_a, memo.select(&ctx, &em, &a, 1.02).2)
    );
    assert_eq!(memo.select(&ctx, &em, &b, 1.02).1, t_b);
    assert_ne!(t_a.cycles, t_b.cycles, "timing of distinct shapes differs");
    let _ = arr_b;
}
