//! Configuration tables: the compiler's output artifact.

use crate::memo::{ShapeTable, TimingMemo};
use planaria_arch::{AcceleratorConfig, Arrangement};
use planaria_energy::EnergyModel;
use planaria_model::units::{Bytes, Cycles, Picojoules};
use planaria_model::Dnn;
use planaria_timing::{time_layer, ExecContext, LayerTiming};

/// Near-tie tolerance for energy-based selection between arrangements of
/// almost-equal latency.
const TIE_TOLERANCE: f64 = 1.02;

/// One layer's entry in a configuration table.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerConfig {
    /// Layer name.
    pub name: String,
    /// Chosen fission configuration.
    pub arrangement: Arrangement,
    /// Timing of one execution under that configuration.
    pub timing: LayerTiming,
    /// Sequential repetitions of the layer.
    pub repeat: u64,
    /// Dynamic energy of one execution.
    pub energy: Picojoules,
    /// Whether the layer runs on the systolic array.
    pub systolic: bool,
}

impl LayerConfig {
    /// Total cycles including repetitions.
    pub fn total_cycles(&self) -> Cycles {
        self.timing.cycles * self.repeat
    }

    /// Total tiles including repetitions.
    pub fn total_tiles(&self) -> u64 {
        self.timing.tiles * self.repeat
    }
}

/// A position within a table's execution, used for preemption bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TilePosition {
    /// Layer index.
    pub layer: usize,
    /// Cycles until the next tile boundary from the queried point.
    pub cycles_to_boundary: Cycles,
    /// Checkpoint size if preempted at that boundary.
    pub tile_bytes: Bytes,
}

/// The per-allocation configuration table: per-layer optimal configs plus
/// cumulative cycle/tile indices for O(log n) progress queries.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigTable {
    subarrays: u32,
    layers: Vec<LayerConfig>,
    /// Cumulative cycles *after* each layer (including repeats).
    cum_cycles: Vec<u64>,
    total_energy: Picojoules,
}

impl ConfigTable {
    /// Allocation size this table was compiled for.
    pub fn subarrays(&self) -> u32 {
        self.subarrays
    }

    /// Per-layer entries.
    pub fn layers(&self) -> &[LayerConfig] {
        &self.layers
    }

    /// End-to-end cycles.
    ///
    /// Every `ConfigTable` covers at least one layer: the only
    /// constructors are [`compile_for_allocation`] and friends, which
    /// reject zero-layer networks (and [`planaria_model::DnnBuilder`]
    /// cannot build one in the first place). A zero-layer table would
    /// silently report 0 cycles everywhere, so the invariant is asserted
    /// at compile time instead of papered over with `unwrap_or(&0)`.
    pub fn total_cycles(&self) -> Cycles {
        // lint: compile_for_allocation rejects empty DNNs, so a table
        // always has at least one cumulative-cycle entry
        Cycles::new(*self.cum_cycles.last().expect("table covers >= 1 layer"))
    }

    /// End-to-end dynamic energy.
    pub fn total_energy(&self) -> Picojoules {
        self.total_energy
    }

    /// Total schedulable tiles.
    pub fn total_tiles(&self) -> u64 {
        self.layers.iter().map(LayerConfig::total_tiles).sum()
    }

    /// Cycles remaining from a progress fraction `done` ∈ [0, 1].
    pub fn remaining_cycles(&self, done: f64) -> Cycles {
        let done = done.clamp(0.0, 1.0);
        let total = self.total_cycles().get();
        Cycles::new(total - (done * total as f64) as u64)
    }

    /// Locates the tile boundary following progress fraction `done`:
    /// which layer is in flight, how many cycles until its current tile
    /// completes, and the checkpoint size there.
    pub fn position(&self, done: f64) -> TilePosition {
        let done = done.clamp(0.0, 1.0);
        let point = (done * self.total_cycles().as_f64()) as u64;
        let layer = match self.cum_cycles.binary_search(&point) {
            Ok(i) => (i + 1).min(self.layers.len() - 1),
            Err(i) => i.min(self.layers.len() - 1),
        };
        let start = if layer == 0 {
            0
        } else {
            self.cum_cycles[layer - 1]
        };
        let lc = &self.layers[layer];
        let into_layer = point.saturating_sub(start);
        let cpt = lc.timing.cycles_per_tile.get().max(1);
        let into_tile = into_layer % cpt;
        TilePosition {
            layer,
            cycles_to_boundary: Cycles::new(cpt - into_tile),
            tile_bytes: lc.timing.tile_bytes,
        }
    }

    /// Work fraction completed after executing `cycles` from fraction
    /// `done` (saturating at 1).
    pub fn advance(&self, done: f64, cycles: Cycles) -> f64 {
        let total = self.total_cycles().get().max(1) as f64;
        (done + cycles.as_f64() / total).min(1.0)
    }
}

/// A DNN compiled for every allocation size 1..=N (the paper's "16 binaries
/// and 16 configuration tables per DNN").
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledDnn {
    name: String,
    tables: Vec<ConfigTable>,
}

impl CompiledDnn {
    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of tables (= chip subarray count).
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// The table for an allocation of `subarrays` granules.
    ///
    /// # Panics
    ///
    /// Panics if `subarrays` is zero or exceeds the chip.
    pub fn table(&self, subarrays: u32) -> &ConfigTable {
        assert!(
            subarrays >= 1 && subarrays as usize <= self.tables.len(),
            "no table for {subarrays} subarrays"
        );
        &self.tables[(subarrays - 1) as usize]
    }

    /// All tables, index `i` holding the table for `i + 1` subarrays.
    pub fn tables(&self) -> &[ConfigTable] {
        &self.tables
    }
}

/// Compiles one table for a fixed allocation size (with a fresh
/// shape-keyed memo; repeated layer shapes are timed once).
///
/// # Panics
///
/// Panics on a zero-layer network — an empty configuration table would
/// silently report 0 cycles (see [`ConfigTable::total_cycles`]).
/// `planaria_model::DnnBuilder::build` already rejects empty networks, so
/// this is a defense-in-depth assertion.
pub fn compile_for_allocation(cfg: &AcceleratorConfig, dnn: &Dnn, subarrays: u32) -> ConfigTable {
    let mut memo = TimingMemo::new(cfg);
    compile_for_allocation_with(cfg, dnn, subarrays, &mut memo)
}

/// Compiles one table for a fixed allocation size, consulting (and
/// filling) a caller-provided [`TimingMemo`].
///
/// The memo must be bound to `cfg` (see [`TimingMemo::new`]); output is
/// bit-identical to [`compile_for_allocation_uncached`] because every
/// cached value is a pure function of `(cfg, shape, arrangement,
/// allocation)`.
///
/// # Panics
///
/// Panics on a zero-layer network or a memo bound to a different
/// configuration.
pub fn compile_for_allocation_with(
    cfg: &AcceleratorConfig,
    dnn: &Dnn,
    subarrays: u32,
    memo: &mut TimingMemo,
) -> ConfigTable {
    assert!(
        dnn.num_layers() > 0,
        "cannot compile a zero-layer DNN (empty configuration tables are invalid)"
    );
    let ctx = ExecContext::for_allocation(cfg, subarrays);
    let em = EnergyModel::for_config(cfg);
    let mut layers = Vec::with_capacity(dnn.num_layers());
    let mut cum_cycles = Vec::with_capacity(dnn.num_layers());
    let mut cum = 0u64;
    let mut total_energy = Picojoules::ZERO;
    for layer in dnn.layers() {
        let (arrangement, timing, energy) = if layer.op.is_systolic() {
            memo.select(&ctx, &em, &layer.op, TIE_TOLERANCE)
        } else {
            let arr = Arrangement::new(1, 1, 1);
            let (t, e) = memo.time(&ctx, &em, &layer.op, arr);
            (arr, t, e)
        };
        cum += (timing.cycles * layer.repeat).get();
        cum_cycles.push(cum);
        total_energy += energy * layer.repeat as f64;
        layers.push(LayerConfig {
            name: layer.name.clone(),
            arrangement,
            timing,
            repeat: layer.repeat,
            energy,
            systolic: layer.op.is_systolic(),
        });
    }
    ConfigTable {
        subarrays,
        layers,
        cum_cycles,
        total_energy,
    }
}

/// Compiles one table against a pre-built [`ShapeTable`], so
/// whole-network compilation builds the dedup index once and amortizes it
/// across all per-allocation tables.
///
/// The arrangement search runs once per *distinct* shape; each layer then
/// fetches its configuration with an O(1) dense-id lookup. No associative
/// cache sits on this path — within one table every `(shape, allocation)`
/// pair is searched exactly once, so the dedup index *is* the memo, and
/// `BTreeMap` probes would be pure overhead (measured: they cost more
/// than the analytic timing model they'd save). Output is bit-identical
/// to [`compile_for_allocation_uncached`] because the search is a pure
/// function of `(cfg, shape, allocation)`.
///
/// # Panics
///
/// Panics on a zero-layer network or a `shapes` table built from a
/// different network.
pub fn compile_for_allocation_shaped(
    cfg: &AcceleratorConfig,
    dnn: &Dnn,
    subarrays: u32,
    shapes: &ShapeTable,
) -> ConfigTable {
    assert!(
        dnn.num_layers() > 0,
        "cannot compile a zero-layer DNN (empty configuration tables are invalid)"
    );
    assert_eq!(
        shapes.num_layers(),
        dnn.num_layers(),
        "shape table was built from a different network"
    );
    let ctx = ExecContext::for_allocation(cfg, subarrays);
    let em = EnergyModel::for_config(cfg);
    // One search per distinct shape; layers below index this table.
    let selections: Vec<(Arrangement, LayerTiming, Picojoules)> = shapes
        .shapes()
        .iter()
        .map(|op| {
            if op.is_systolic() {
                select_arrangement(&ctx, &em, op)
            } else {
                let arr = Arrangement::new(1, 1, 1);
                let t = time_layer(&ctx, op, arr);
                let e = em.dynamic_energy(&t.counts);
                (arr, t, e)
            }
        })
        .collect();
    let mut layers = Vec::with_capacity(dnn.num_layers());
    let mut cum_cycles = Vec::with_capacity(dnn.num_layers());
    let mut cum = 0u64;
    let mut total_energy = Picojoules::ZERO;
    for (i, layer) in dnn.layers().iter().enumerate() {
        let (arrangement, timing, energy) = selections[shapes.shape_id(i)];
        cum += (timing.cycles * layer.repeat).get();
        cum_cycles.push(cum);
        total_energy += energy * layer.repeat as f64;
        layers.push(LayerConfig {
            name: layer.name.clone(),
            arrangement,
            timing,
            repeat: layer.repeat,
            energy,
            systolic: layer.op.is_systolic(),
        });
    }
    ConfigTable {
        subarrays,
        layers,
        cum_cycles,
        total_energy,
    }
}

/// Reference (memo-free) compilation of one table: re-evaluates
/// `time_layer` for every layer occurrence, exactly as the compiler did
/// before shape memoization. Kept as the oracle for the
/// `compile_memoized_equals_unmemoized` equivalence tests and the
/// cold-compile benchmark baseline.
///
/// # Panics
///
/// Panics on a zero-layer network.
pub fn compile_for_allocation_uncached(
    cfg: &AcceleratorConfig,
    dnn: &Dnn,
    subarrays: u32,
) -> ConfigTable {
    assert!(
        dnn.num_layers() > 0,
        "cannot compile a zero-layer DNN (empty configuration tables are invalid)"
    );
    let ctx = ExecContext::for_allocation(cfg, subarrays);
    let em = EnergyModel::for_config(cfg);
    let mut layers = Vec::with_capacity(dnn.num_layers());
    let mut cum_cycles = Vec::with_capacity(dnn.num_layers());
    let mut cum = 0u64;
    let mut total_energy = Picojoules::ZERO;
    for layer in dnn.layers() {
        let (arrangement, timing, energy) = if layer.op.is_systolic() {
            select_arrangement(&ctx, &em, &layer.op)
        } else {
            let arr = Arrangement::new(1, 1, 1);
            let t = time_layer(&ctx, &layer.op, arr);
            let e = em.dynamic_energy(&t.counts);
            (arr, t, e)
        };
        cum += (timing.cycles * layer.repeat).get();
        cum_cycles.push(cum);
        total_energy += energy * layer.repeat as f64;
        layers.push(LayerConfig {
            name: layer.name.clone(),
            arrangement,
            timing,
            repeat: layer.repeat,
            energy,
            systolic: layer.op.is_systolic(),
        });
    }
    ConfigTable {
        subarrays,
        layers,
        cum_cycles,
        total_energy,
    }
}

/// Exhaustive per-layer search: minimum cycles, near-ties broken by energy.
fn select_arrangement(
    ctx: &ExecContext,
    em: &EnergyModel,
    op: &planaria_model::LayerOp,
) -> (Arrangement, LayerTiming, Picojoules) {
    let mut best: Option<(Arrangement, LayerTiming, Picojoules)> = None;
    for arr in Arrangement::enumerate_for(&ctx.cfg, ctx.subarrays) {
        let t = time_layer(ctx, op, arr);
        let e = em.dynamic_energy(&t.counts);
        let better = match &best {
            None => true,
            Some((_, bt, be)) => {
                let much_faster = t.cycles.as_f64() * TIE_TOLERANCE < bt.cycles.as_f64();
                let near_tie = t.cycles.as_f64() <= bt.cycles.as_f64() * TIE_TOLERANCE;
                much_faster || (near_tie && e < *be)
            }
        };
        if better {
            best = Some((arr, t, e));
        }
    }
    // lint: enumerate_for always yields at least the trivial arrangement
    best.expect("at least one arrangement")
}

/// Compiles `dnn` for every allocation size on `cfg`, deduplicating layer
/// shapes once (via [`ShapeTable`]) so the arrangement search runs per
/// distinct shape and allocation, not per layer occurrence.
///
/// # Panics
///
/// Panics on a zero-layer network.
pub fn compile(cfg: &AcceleratorConfig, dnn: &Dnn) -> CompiledDnn {
    let n = cfg.num_subarrays();
    let shapes = ShapeTable::for_dnn(dnn);
    let tables = (1..=n)
        .map(|s| compile_for_allocation_shaped(cfg, dnn, s, &shapes))
        .collect();
    CompiledDnn {
        name: dnn.name().to_string(),
        tables,
    }
}

/// Like [`compile`], streaming compilation telemetry into `c`: one
/// [`Event::TableCompiled`](planaria_telemetry::Event::TableCompiled) per
/// allocation size, plus memo hit/miss, distinct-shape, and
/// layers-compiled counters.
///
/// Uses the shared-memo path ([`compile_for_allocation_with`]) so the
/// hit/miss counts reflect a real cross-allocation cache; output is
/// bit-identical to [`compile`] because every cached value is a pure
/// function of `(cfg, shape, arrangement, allocation)` (asserted by a
/// test below).
///
/// # Panics
///
/// Panics on a zero-layer network.
pub fn compile_with_collector<C: planaria_telemetry::Collector>(
    cfg: &AcceleratorConfig,
    dnn: &Dnn,
    c: &mut C,
) -> CompiledDnn {
    use planaria_telemetry::{Counter, Event};
    let n = cfg.num_subarrays();
    let shapes = ShapeTable::for_dnn(dnn);
    let mut memo = TimingMemo::new(cfg);
    let layers = dnn.num_layers() as u32;
    let mut tables = Vec::with_capacity(n as usize);
    for s in 1..=n {
        tables.push(compile_for_allocation_with(cfg, dnn, s, &mut memo));
        if c.is_enabled() {
            c.record(
                planaria_model::units::Cycles::ZERO,
                Event::TableCompiled {
                    subarrays: s,
                    layers,
                    distinct_shapes: shapes.num_shapes() as u32,
                },
            );
        }
    }
    if c.is_enabled() {
        c.add(Counter::MemoHits, memo.hits());
        c.add(Counter::MemoMisses, memo.misses());
        c.add(Counter::DistinctShapes, shapes.num_shapes() as u64);
        c.add(Counter::LayersCompiled, u64::from(layers) * u64::from(n));
    }
    CompiledDnn {
        name: dnn.name().to_string(),
        tables,
    }
}

/// Reference (memo-free) whole-network compilation; see
/// [`compile_for_allocation_uncached`].
///
/// # Panics
///
/// Panics on a zero-layer network.
pub fn compile_uncached(cfg: &AcceleratorConfig, dnn: &Dnn) -> CompiledDnn {
    let n = cfg.num_subarrays();
    let tables = (1..=n)
        .map(|s| compile_for_allocation_uncached(cfg, dnn, s))
        .collect();
    CompiledDnn {
        name: dnn.name().to_string(),
        tables,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planaria_model::DnnId;

    fn compiled(id: DnnId) -> CompiledDnn {
        compile(&AcceleratorConfig::planaria(), &id.build())
    }

    #[test]
    fn tables_cover_every_allocation() {
        let c = compiled(DnnId::TinyYolo);
        assert_eq!(c.num_tables(), 16);
        for s in 1..=16 {
            assert_eq!(c.table(s).subarrays(), s);
        }
    }

    #[test]
    fn collector_compile_is_bit_identical_and_counts_memo_traffic() {
        use planaria_telemetry::{Counter, Event, RecordingCollector};
        let cfg = AcceleratorConfig::planaria();
        let net = DnnId::TinyYolo.build();
        let plain = compile(&cfg, &net);
        let mut c = RecordingCollector::new();
        let instrumented = compile_with_collector(&cfg, &net, &mut c);
        assert_eq!(plain, instrumented);
        let tables_done = c
            .events()
            .iter()
            .filter(|te| matches!(te.event, Event::TableCompiled { .. }))
            .count();
        assert_eq!(tables_done, 16);
        let hits = c.counter(Counter::MemoHits);
        let misses = c.counter(Counter::MemoMisses);
        assert!(misses > 0, "search must run at least once per shape");
        assert!(hits > 0, "repeated shapes must hit the memo");
        let layers = c.counter(Counter::LayersCompiled);
        assert_eq!(layers, net.num_layers() as u64 * 16);
        assert!(c.counter(Counter::DistinctShapes) <= net.num_layers() as u64);
        // Every layer of every table was served by the memo.
        assert_eq!(hits + misses, layers);
    }

    #[test]
    fn more_subarrays_monotonically_help() {
        let c = compiled(DnnId::MobileNetV1);
        let mut prev = Cycles::new(u64::MAX);
        for s in 1..=16 {
            let cy = c.table(s).total_cycles();
            assert!(cy <= prev, "allocation {s} slower than {}", s - 1);
            prev = cy;
        }
    }

    #[test]
    fn remaining_cycles_interpolates() {
        let c = compiled(DnnId::TinyYolo);
        let t = c.table(8);
        assert_eq!(t.remaining_cycles(0.0), t.total_cycles());
        assert_eq!(t.remaining_cycles(1.0), Cycles::ZERO);
        let half = t.remaining_cycles(0.5);
        assert!(half > t.total_cycles() / 3 && half < t.total_cycles() * 2 / 3);
    }

    #[test]
    fn position_tracks_layers_forward() {
        let c = compiled(DnnId::TinyYolo);
        let t = c.table(16);
        let start = t.position(0.0);
        let end = t.position(0.999);
        assert_eq!(start.layer, 0);
        assert!(end.layer > start.layer);
        assert!(!start.cycles_to_boundary.is_zero());
    }

    #[test]
    fn advance_moves_fraction_proportionally() {
        let c = compiled(DnnId::TinyYolo);
        let t = c.table(4);
        let half = t.advance(0.0, t.total_cycles() / 2);
        assert!((half - 0.5).abs() < 0.01);
        assert!((t.advance(0.9, t.total_cycles()) - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn energy_accumulates() {
        let c = compiled(DnnId::TinyYolo);
        assert!(c.table(16).total_energy().as_pj() > 0.0);
    }

    #[test]
    fn depthwise_layers_fission_fully_in_big_allocations() {
        let c = compiled(DnnId::MobileNetV1);
        let t = c.table(16);
        let dw = t
            .layers()
            .iter()
            .find(|l| l.name.contains(".dw") && l.systolic)
            .unwrap();
        assert!(dw.arrangement.clusters >= 8, "got {}", dw.arrangement);
    }
}
