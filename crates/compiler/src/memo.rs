//! Shape-keyed timing memoization for the offline compiler.
//!
//! DNNs repeat layer shapes heavily — ResNet-50's residual stages reuse a
//! handful of convolution shapes dozens of times, GNMT's recurrent steps
//! are a single shape repeated 25×. The un-memoized compiler re-runs the
//! full arrangement search (`time_layer` over every fission arrangement)
//! for each occurrence. This module caches timing results by **layer
//! shape**, so every distinct `(shape, arrangement, allocation)` triple is
//! timed exactly once per accelerator configuration — the same
//! precompute-once philosophy the paper applies to `PREDICTTIME` ("reduces
//! to merely looking up" precomputed entries, §V), turned on the simulator
//! itself.
//!
//! Two cache levels:
//!
//! * the **selection cache** maps `(LayerShapeKey, subarrays)` to the
//!   chosen `(Arrangement, LayerTiming, Picojoules)` — a repeated shape
//!   skips the entire arrangement search;
//! * the **timing cache** maps `(LayerShapeKey, Arrangement, subarrays)`
//!   to `(LayerTiming, Picojoules)` — for direct [`TimingMemo::time`]
//!   probes (the compiler's vector layers, which repeat heavily in
//!   recurrent networks).
//!
//! The selection search itself calls `time_layer` directly rather than
//! going through the timing cache: the selection cache already
//! short-circuits repeated shapes, so no `(shape, arrangement,
//! allocation)` triple is ever probed twice by the search — and the
//! analytic timing model is cheap enough that inserting every probe into
//! a `BTreeMap` costs more than recomputing it.
//!
//! Determinism: `time_layer` and `EnergyModel::dynamic_energy` are pure
//! functions of `(cfg, shape, arrangement, allocation)`, so a cache hit
//! returns bit-identical values to a recomputation. A memo is bound to one
//! [`AcceleratorConfig`] at construction and panics if used with another,
//! which makes cross-config cache poisoning impossible.

use planaria_arch::{AcceleratorConfig, Arrangement};
use planaria_energy::EnergyModel;
use planaria_model::units::Picojoules;
use planaria_model::{Dnn, LayerOp};
use planaria_timing::{time_layer, ExecContext, LayerTiming};
use std::collections::BTreeMap;

/// The memo key for a layer's shape: the operator payload itself, which
/// (unlike the layer *name*) is identical for every repetition of a shape.
pub type LayerShapeKey = LayerOp;

/// Per-network shape deduplication: maps every layer index to a dense
/// shape id, so per-layer cache probes in the table compiler are O(1)
/// `Vec` lookups instead of `BTreeMap` searches over large `LayerOp`
/// keys. Built once per network (one `BTreeMap` pass) and amortized
/// across all 16 per-allocation tables.
///
/// The benchmark suite repeats shapes heavily — ResNet-50 collapses 105
/// layers to 36 distinct shapes, YOLOv3 172 → 38, GNMT 38 → 6 — so the
/// arrangement search runs per *distinct* shape, not per layer.
#[derive(Debug, Clone)]
pub struct ShapeTable {
    shapes: Vec<LayerShapeKey>,
    index: Vec<usize>,
}

impl ShapeTable {
    /// Dedupes `dnn`'s layer shapes, preserving first-occurrence order
    /// (so shape ids — and everything derived from them — are
    /// deterministic).
    pub fn for_dnn(dnn: &Dnn) -> Self {
        let mut ids: BTreeMap<LayerShapeKey, usize> = BTreeMap::new();
        let mut shapes = Vec::new();
        let mut index = Vec::with_capacity(dnn.num_layers());
        for layer in dnn.layers() {
            let next = shapes.len();
            let id = *ids.entry(layer.op).or_insert(next);
            if id == next {
                shapes.push(layer.op);
            }
            index.push(id);
        }
        Self { shapes, index }
    }

    /// The distinct shapes, in first-occurrence order.
    pub fn shapes(&self) -> &[LayerShapeKey] {
        &self.shapes
    }

    /// Number of distinct shapes.
    pub fn num_shapes(&self) -> usize {
        self.shapes.len()
    }

    /// Number of layers in the underlying network.
    pub fn num_layers(&self) -> usize {
        self.index.len()
    }

    /// The dense shape id of layer `layer_idx`.
    ///
    /// # Panics
    ///
    /// Panics if `layer_idx` is out of bounds.
    pub fn shape_id(&self, layer_idx: usize) -> usize {
        self.index[layer_idx]
    }
}

/// A per-configuration timing memo (see the module docs).
#[derive(Debug, Clone)]
pub struct TimingMemo {
    cfg: AcceleratorConfig,
    timing: BTreeMap<(LayerShapeKey, Arrangement, u32), (LayerTiming, Picojoules)>,
    selection: BTreeMap<(LayerShapeKey, u32), (Arrangement, LayerTiming, Picojoules)>,
    hits: u64,
    misses: u64,
}

impl TimingMemo {
    /// An empty memo bound to `cfg`.
    pub fn new(cfg: &AcceleratorConfig) -> Self {
        Self {
            cfg: *cfg,
            timing: BTreeMap::new(),
            selection: BTreeMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Cache hits observed so far (selection- and timing-level combined).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (entries computed) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of cached entries (timing- and selection-level combined).
    pub fn len(&self) -> usize {
        self.timing.len() + self.selection.len()
    }

    /// Whether the memo has no entries yet.
    pub fn is_empty(&self) -> bool {
        self.timing.is_empty() && self.selection.is_empty()
    }

    fn assert_cfg(&self, cfg: &AcceleratorConfig) {
        assert!(
            self.cfg == *cfg,
            "TimingMemo is bound to one accelerator configuration; \
             build a fresh memo per config"
        );
    }

    /// Times `op` on `arr` under `ctx`, consulting the timing cache.
    pub fn time(
        &mut self,
        ctx: &ExecContext,
        em: &EnergyModel,
        op: &LayerOp,
        arr: Arrangement,
    ) -> (LayerTiming, Picojoules) {
        self.assert_cfg(&ctx.cfg);
        let key = (*op, arr, ctx.subarrays);
        if let Some(&cached) = self.timing.get(&key) {
            self.hits += 1;
            return cached;
        }
        let t = time_layer(ctx, op, arr);
        let e = em.dynamic_energy(&t.counts);
        self.timing.insert(key, (t, e));
        self.misses += 1;
        (t, e)
    }

    /// The compiler's full per-layer search (minimum cycles, near-ties
    /// broken by dynamic energy), consulting the selection cache so a
    /// repeated shape costs one `BTreeMap` lookup.
    pub fn select(
        &mut self,
        ctx: &ExecContext,
        em: &EnergyModel,
        op: &LayerOp,
        tie_tolerance: f64,
    ) -> (Arrangement, LayerTiming, Picojoules) {
        self.assert_cfg(&ctx.cfg);
        let key = (*op, ctx.subarrays);
        if let Some(&cached) = self.selection.get(&key) {
            self.hits += 1;
            return cached;
        }
        let mut best: Option<(Arrangement, LayerTiming, Picojoules)> = None;
        for arr in Arrangement::enumerate_for(&ctx.cfg, ctx.subarrays) {
            // Probe directly — the selection cache above guarantees this
            // search runs at most once per (shape, allocation), so caching
            // the individual probes would only add insert overhead.
            let t = time_layer(ctx, op, arr);
            let e = em.dynamic_energy(&t.counts);
            let better = match &best {
                None => true,
                Some((_, bt, be)) => {
                    let much_faster = t.cycles.as_f64() * tie_tolerance < bt.cycles.as_f64();
                    let near_tie = t.cycles.as_f64() <= bt.cycles.as_f64() * tie_tolerance;
                    much_faster || (near_tie && e < *be)
                }
            };
            if better {
                best = Some((arr, t, e));
            }
        }
        // lint: enumerate_for always yields at least the trivial arrangement
        let chosen = best.expect("at least one arrangement");
        self.selection.insert(key, chosen);
        self.misses += 1;
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_shapes_hit_the_cache() {
        let cfg = AcceleratorConfig::planaria();
        let ctx = ExecContext::full_chip(&cfg);
        let em = EnergyModel::for_config(&cfg);
        let op = LayerOp::Conv(planaria_model::ConvSpec::new(64, 64, 3, 3, 1, 1, 28, 28));
        let mut memo = TimingMemo::new(&cfg);
        let first = memo.select(&ctx, &em, &op, 1.02);
        let misses_after_first = memo.misses();
        let second = memo.select(&ctx, &em, &op, 1.02);
        assert_eq!(first, second);
        assert_eq!(
            memo.misses(),
            misses_after_first,
            "second call is pure lookup"
        );
        assert!(memo.hits() >= 1);
        assert!(!memo.is_empty());
    }

    #[test]
    fn shape_table_dedupes_and_round_trips() {
        let dnn = planaria_model::DnnId::ResNet50.build();
        let st = ShapeTable::for_dnn(&dnn);
        assert_eq!(st.num_layers(), dnn.num_layers());
        assert!(
            st.num_shapes() < st.num_layers(),
            "ResNet-50 repeats shapes; the table must dedupe"
        );
        for (i, layer) in dnn.layers().iter().enumerate() {
            assert_eq!(st.shapes()[st.shape_id(i)], layer.op);
        }
    }

    #[test]
    #[should_panic(expected = "one accelerator configuration")]
    fn cross_config_use_is_rejected() {
        let planaria = AcceleratorConfig::planaria();
        let mono = AcceleratorConfig::monolithic();
        let ctx = ExecContext::full_chip(&mono);
        let em = EnergyModel::for_config(&mono);
        let op = LayerOp::MatMul(planaria_model::MatMulSpec::new(1, 64, 64));
        let mut memo = TimingMemo::new(&planaria);
        let _ = memo.time(&ctx, &em, &op, Arrangement::new(1, 1, 1));
    }
}
