//! Offline compiler for Planaria (Fig. 11a).
//!
//! Because a DNN serving an INFaaS stream may be granted anywhere from 1 to
//! 16 subarrays over its lifetime, the compiler produces **one configuration
//! table per possible allocation size**. Each table stores, per layer, the
//! optimal fission configuration ([`Arrangement`](planaria_arch::Arrangement)),
//! the number of tiles, and the estimated cycles per tile — exactly the
//! lookup structure the paper's runtime scheduler consults to predict
//! remaining time ("the `PREDICTTIME` function reduces to merely looking up
//! the number of remaining tiles with their cycles", §V).
//!
//! Configuration selection minimizes cycles, breaking near-ties (within 2 %)
//! by dynamic energy — mirroring the paper's offline exhaustive search over
//! fission possibilities and tiling sizes.
//!
//! # Example
//!
//! ```
//! use planaria_arch::AcceleratorConfig;
//! use planaria_compiler::compile;
//! use planaria_model::DnnId;
//!
//! let cfg = AcceleratorConfig::planaria();
//! let bin = compile(&cfg, &DnnId::GoogLeNet.build());
//! assert_eq!(bin.num_tables(), 16);
//! // More subarrays never hurt:
//! assert!(bin.table(16).total_cycles() <= bin.table(1).total_cycles());
//! ```

pub mod histogram;
pub mod library;
pub mod memo;
pub mod table;

pub use histogram::{config_histogram, ConfigUsage};
pub use library::CompiledLibrary;
pub use memo::{LayerShapeKey, ShapeTable, TimingMemo};
pub use table::{
    compile, compile_for_allocation, compile_for_allocation_shaped,
    compile_for_allocation_uncached, compile_for_allocation_with, compile_uncached,
    compile_with_collector, CompiledDnn, ConfigTable, LayerConfig, TilePosition,
};
