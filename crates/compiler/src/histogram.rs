//! Configuration-usage histogram: the data behind Table II.
//!
//! For a network compiled at full-chip allocation, reports what fraction of
//! its systolic layers selected each fission arrangement, along with the
//! arrangement's Table II attributes (parallelism / IAR / PSR / OD usage).

use crate::table::ConfigTable;
use planaria_arch::Arrangement;

/// Usage record of one arrangement by one network.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigUsage {
    /// The arrangement.
    pub arrangement: Arrangement,
    /// Table II-style label, e.g. `"(64x256)-1"`.
    pub label: String,
    /// Fraction of the network's systolic layers using it (0..1).
    pub fraction: f64,
    /// Number of layers using it.
    pub layers: usize,
    /// Whether omni-directional flow is required.
    pub uses_od: bool,
}

/// Computes the arrangement-usage histogram of a configuration table,
/// counting only systolic layers (the paper's "% of layers" is over
/// conv/matmul layers, which are the ones with a fission choice).
pub fn config_histogram(table: &ConfigTable, subarray_dim: u32) -> Vec<ConfigUsage> {
    let systolic: Vec<_> = table.layers().iter().filter(|l| l.systolic).collect();
    let total = systolic.len().max(1);
    let mut out: Vec<ConfigUsage> = Vec::new();
    for l in &systolic {
        if let Some(u) = out.iter_mut().find(|u| u.arrangement == l.arrangement) {
            u.layers += 1;
        } else {
            out.push(ConfigUsage {
                arrangement: l.arrangement,
                label: l.arrangement.label(subarray_dim),
                fraction: 0.0,
                layers: 1,
                uses_od: l.arrangement.uses_omnidirectional(),
            });
        }
    }
    for u in &mut out {
        u.fraction = u.layers as f64 / total as f64;
    }
    out.sort_by_key(|u| std::cmp::Reverse(u.layers));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::compile_for_allocation;
    use planaria_arch::AcceleratorConfig;
    use planaria_model::DnnId;

    #[test]
    fn fractions_sum_to_one() {
        let cfg = AcceleratorConfig::planaria();
        let t = compile_for_allocation(&cfg, &DnnId::ResNet50.build(), 16);
        let h = config_histogram(&t, cfg.subarray_dim);
        let sum: f64 = h.iter().map(|u| u.fraction).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(!h.is_empty());
    }

    #[test]
    fn mobilenet_uses_fully_fissioned_config() {
        // Table II: the (32x32)-16 configuration is used by 46.4% of
        // MobileNet-v1's layers (its depthwise half).
        let cfg = AcceleratorConfig::planaria();
        let t = compile_for_allocation(&cfg, &DnnId::MobileNetV1.build(), 16);
        let h = config_histogram(&t, cfg.subarray_dim);
        let full_fission = h
            .iter()
            .find(|u| u.arrangement == Arrangement::new(16, 1, 1));
        assert!(
            full_fission.map(|u| u.fraction).unwrap_or(0.0) > 0.25,
            "expected heavy (32x32)-16 usage: {h:?}"
        );
    }

    #[test]
    fn some_network_exercises_od_configs() {
        // Table II's black cell: omni-directional configurations are the
        // most fruitful; at least GNMT must pick one.
        let cfg = AcceleratorConfig::planaria();
        let t = compile_for_allocation(&cfg, &DnnId::Gnmt.build(), 16);
        let h = config_histogram(&t, cfg.subarray_dim);
        assert!(h.iter().any(|u| u.uses_od), "GNMT histogram: {h:?}");
    }
}
