//! Pre-compiled network library shared by engines.

use crate::table::{compile, CompiledDnn};
use planaria_arch::AcceleratorConfig;
use planaria_model::DnnId;
use planaria_parallel::{effective_jobs, par_map};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// All nine benchmark networks compiled for one accelerator configuration.
///
/// Compilation (16 tables × every layer × every arrangement) happens once;
/// engines and benchmark harnesses share the library via cheap clones.
#[derive(Debug, Clone)]
pub struct CompiledLibrary {
    cfg: AcceleratorConfig,
    by_id: BTreeMap<DnnId, Arc<CompiledDnn>>,
}

impl CompiledLibrary {
    /// Compiles every benchmark network for `cfg`.
    ///
    /// The nine networks are independent, so they fan out over the
    /// [`planaria_parallel`] pool (worker count from `PLANARIA_JOBS` /
    /// [`std::thread::available_parallelism`]). Each network compiles
    /// with its own shape-keyed memo ([`crate::ShapeTable`] +
    /// [`crate::TimingMemo`]) — built once per network and amortized
    /// across all per-allocation tables — and results join in
    /// `DnnId::ALL` index order, so the library is bit-identical at any
    /// job count.
    pub fn new(cfg: AcceleratorConfig) -> Self {
        Self::with_jobs(cfg, effective_jobs())
    }

    /// [`CompiledLibrary::new`] with an explicit worker count
    /// (determinism tests compare `jobs = 1` against `jobs = N`).
    pub fn with_jobs(cfg: AcceleratorConfig, jobs: usize) -> Self {
        let compiled = par_map(DnnId::ALL.to_vec(), jobs, |id| {
            (id, Arc::new(compile(&cfg, &id.build())))
        });
        Self {
            cfg,
            by_id: compiled.into_iter().collect(),
        }
    }

    /// The configuration the library was compiled for.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.cfg
    }

    /// The compiled form of one network.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the library (never happens for the
    /// nine-network suite).
    pub fn get(&self, id: DnnId) -> &CompiledDnn {
        // lint: the constructor inserts every DnnId, so lookup cannot fail
        self.by_id.get(&id).expect("library covers all benchmarks")
    }

    /// A shared handle to the compiled form of one network (engines
    /// cache this per tenant to avoid a map lookup per scheduling
    /// event).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the library (never happens for the
    /// nine-network suite).
    pub fn shared(&self, id: DnnId) -> Arc<CompiledDnn> {
        // lint: the constructor inserts every DnnId, so lookup cannot fail
        Arc::clone(self.by_id.get(&id).expect("library covers all benchmarks"))
    }

    /// A process-wide shared library for `cfg`, compiled at most once
    /// per distinct geometry.
    ///
    /// Engines construct through here, so an N-node fleet running K
    /// distinct chip geometries compiles K libraries instead of N —
    /// before the cache, every `PlanariaEngine::new(cfg)` recompiled all
    /// nine networks even when an identical sibling node already had
    /// them. Keys cover every configuration field (floats by bit
    /// pattern), so two configs share a library only when their compiled
    /// tables are guaranteed identical. The compile itself runs under
    /// the cache lock: concurrent requests for the same new geometry
    /// wait and then share, rather than racing to compile twice.
    ///
    /// [`CompiledLibrary::new`] stays uncached for callers that need a
    /// private compile (the determinism tests compare fresh ones).
    pub fn shared_for(cfg: &AcceleratorConfig) -> Arc<Self> {
        static CACHE: OnceLock<Mutex<BTreeMap<GeometryKey, Arc<CompiledLibrary>>>> =
            OnceLock::new();
        let mut cache = CACHE
            .get_or_init(|| Mutex::new(BTreeMap::new()))
            .lock()
            // lint: a poisoned cache only means another thread panicked
            // mid-compile; the map itself is still a valid key->Arc store
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(lib) = cache.get(&GeometryKey::of(cfg)) {
            CACHE_HITS.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(lib);
        }
        CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
        let lib = Arc::new(Self::new(*cfg));
        cache.insert(GeometryKey::of(cfg), Arc::clone(&lib));
        lib
    }

    /// Process-wide `(hits, misses)` of the [`shared_for`] cache; each
    /// miss is one full nine-network compile. The geometry bench guard
    /// asserts that fleet construction cost scales with distinct
    /// geometries, not node count.
    ///
    /// [`shared_for`]: Self::shared_for
    pub fn cache_stats() -> (u64, u64) {
        (
            CACHE_HITS.load(Ordering::Relaxed),
            CACHE_MISSES.load(Ordering::Relaxed),
        )
    }

    /// Isolated full-chip latency of one network, seconds — the
    /// `T_isolated` term of the fairness metric.
    pub fn isolated_latency(&self, id: DnnId) -> f64 {
        let n = self.cfg.num_subarrays();
        self.get(id)
            .table(n)
            .total_cycles()
            .seconds_at(self.cfg.freq_hz)
    }

    /// Isolated latencies for all networks (for the fairness metric).
    pub fn isolated_latencies(&self) -> BTreeMap<DnnId, f64> {
        DnnId::ALL
            .into_iter()
            .map(|id| (id, self.isolated_latency(id)))
            .collect()
    }
}

static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);

/// Total-order cache key covering every [`AcceleratorConfig`] field;
/// floats compare by bit pattern, so any numeric difference — even a
/// crossbar-derated clock vs the nominal one — is a distinct geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct GeometryKey {
    pe_rows: u32,
    pe_cols: u32,
    subarray_dim: u32,
    subarrays_per_pod: u32,
    freq_bits: u64,
    onchip_buffer_bytes: u64,
    weight_buffer_per_pe: u64,
    dram_channels: u32,
    dram_bw_bits: u64,
    simd_lanes_per_subarray: u32,
    ring_pipeline_regs: u32,
    instr_buffer_bytes: u64,
    omnidirectional: bool,
}

impl GeometryKey {
    fn of(cfg: &AcceleratorConfig) -> Self {
        Self {
            pe_rows: cfg.pe_rows,
            pe_cols: cfg.pe_cols,
            subarray_dim: cfg.subarray_dim,
            subarrays_per_pod: cfg.subarrays_per_pod,
            freq_bits: cfg.freq_hz.to_bits(),
            onchip_buffer_bytes: cfg.onchip_buffer_bytes,
            weight_buffer_per_pe: cfg.weight_buffer_per_pe,
            dram_channels: cfg.dram_channels,
            dram_bw_bits: cfg.dram_bw_per_channel.to_bits(),
            simd_lanes_per_subarray: cfg.simd_lanes_per_subarray,
            ring_pipeline_regs: cfg.ring_pipeline_regs,
            instr_buffer_bytes: cfg.instr_buffer_bytes,
            omnidirectional: cfg.omnidirectional,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_covers_suite_and_is_cheap_to_clone() {
        let lib = CompiledLibrary::new(AcceleratorConfig::planaria());
        for id in DnnId::ALL {
            assert_eq!(lib.get(id).num_tables(), 16);
            assert!(lib.isolated_latency(id) > 0.0);
        }
        let clone = lib.clone();
        assert!(std::ptr::eq(
            clone.get(DnnId::ResNet50),
            lib.get(DnnId::ResNet50)
        ));
    }

    #[test]
    fn monolithic_library_has_single_table() {
        let lib = CompiledLibrary::new(AcceleratorConfig::monolithic());
        assert_eq!(lib.get(DnnId::TinyYolo).num_tables(), 1);
    }

    #[test]
    fn shared_cache_compiles_each_geometry_once() {
        let (_, misses0) = CompiledLibrary::cache_stats();
        let a = CompiledLibrary::shared_for(&AcceleratorConfig::planaria());
        let b = CompiledLibrary::shared_for(&AcceleratorConfig::planaria());
        assert!(Arc::ptr_eq(&a, &b), "same geometry shares one library");
        // A different clock is a different geometry (distinct tables).
        let mut derated = AcceleratorConfig::planaria();
        derated.freq_hz *= 0.85;
        let c = CompiledLibrary::shared_for(&derated);
        assert!(!Arc::ptr_eq(&a, &c));
        let (_, misses1) = CompiledLibrary::cache_stats();
        // Three lookups, at most two compiles (other tests may also
        // populate the process-wide cache concurrently, so compare
        // deltas conservatively).
        assert!(misses1 - misses0 <= 2, "{misses0} -> {misses1}");
        // The cached library matches a fresh private compile.
        let fresh = CompiledLibrary::new(AcceleratorConfig::planaria());
        for id in DnnId::ALL {
            assert_eq!(a.get(id), fresh.get(id), "{id:?}");
        }
    }

    #[test]
    fn parallel_compile_is_bit_identical_to_serial() {
        let serial = CompiledLibrary::with_jobs(AcceleratorConfig::planaria(), 1);
        let par = CompiledLibrary::with_jobs(AcceleratorConfig::planaria(), 4);
        for id in DnnId::ALL {
            assert_eq!(
                serial.get(id),
                par.get(id),
                "{id:?} differs across job counts"
            );
        }
    }
}
