//! Pre-compiled network library shared by engines.

use crate::table::{compile, CompiledDnn};
use planaria_arch::AcceleratorConfig;
use planaria_model::DnnId;
use planaria_parallel::{effective_jobs, par_map};
use std::collections::BTreeMap;
use std::sync::Arc;

/// All nine benchmark networks compiled for one accelerator configuration.
///
/// Compilation (16 tables × every layer × every arrangement) happens once;
/// engines and benchmark harnesses share the library via cheap clones.
#[derive(Debug, Clone)]
pub struct CompiledLibrary {
    cfg: AcceleratorConfig,
    by_id: BTreeMap<DnnId, Arc<CompiledDnn>>,
}

impl CompiledLibrary {
    /// Compiles every benchmark network for `cfg`.
    ///
    /// The nine networks are independent, so they fan out over the
    /// [`planaria_parallel`] pool (worker count from `PLANARIA_JOBS` /
    /// [`std::thread::available_parallelism`]). Each network compiles
    /// with its own shape-keyed memo ([`crate::ShapeTable`] +
    /// [`crate::TimingMemo`]) — built once per network and amortized
    /// across all per-allocation tables — and results join in
    /// `DnnId::ALL` index order, so the library is bit-identical at any
    /// job count.
    pub fn new(cfg: AcceleratorConfig) -> Self {
        Self::with_jobs(cfg, effective_jobs())
    }

    /// [`CompiledLibrary::new`] with an explicit worker count
    /// (determinism tests compare `jobs = 1` against `jobs = N`).
    pub fn with_jobs(cfg: AcceleratorConfig, jobs: usize) -> Self {
        let compiled = par_map(DnnId::ALL.to_vec(), jobs, |id| {
            (id, Arc::new(compile(&cfg, &id.build())))
        });
        Self {
            cfg,
            by_id: compiled.into_iter().collect(),
        }
    }

    /// The configuration the library was compiled for.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.cfg
    }

    /// The compiled form of one network.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the library (never happens for the
    /// nine-network suite).
    pub fn get(&self, id: DnnId) -> &CompiledDnn {
        // lint: the constructor inserts every DnnId, so lookup cannot fail
        self.by_id.get(&id).expect("library covers all benchmarks")
    }

    /// A shared handle to the compiled form of one network (engines
    /// cache this per tenant to avoid a map lookup per scheduling
    /// event).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the library (never happens for the
    /// nine-network suite).
    pub fn shared(&self, id: DnnId) -> Arc<CompiledDnn> {
        // lint: the constructor inserts every DnnId, so lookup cannot fail
        Arc::clone(self.by_id.get(&id).expect("library covers all benchmarks"))
    }

    /// Isolated full-chip latency of one network, seconds — the
    /// `T_isolated` term of the fairness metric.
    pub fn isolated_latency(&self, id: DnnId) -> f64 {
        let n = self.cfg.num_subarrays();
        self.get(id)
            .table(n)
            .total_cycles()
            .seconds_at(self.cfg.freq_hz)
    }

    /// Isolated latencies for all networks (for the fairness metric).
    pub fn isolated_latencies(&self) -> BTreeMap<DnnId, f64> {
        DnnId::ALL
            .into_iter()
            .map(|id| (id, self.isolated_latency(id)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_covers_suite_and_is_cheap_to_clone() {
        let lib = CompiledLibrary::new(AcceleratorConfig::planaria());
        for id in DnnId::ALL {
            assert_eq!(lib.get(id).num_tables(), 16);
            assert!(lib.isolated_latency(id) > 0.0);
        }
        let clone = lib.clone();
        assert!(std::ptr::eq(
            clone.get(DnnId::ResNet50),
            lib.get(DnnId::ResNet50)
        ));
    }

    #[test]
    fn monolithic_library_has_single_table() {
        let lib = CompiledLibrary::new(AcceleratorConfig::monolithic());
        assert_eq!(lib.get(DnnId::TinyYolo).num_tables(), 1);
    }

    #[test]
    fn parallel_compile_is_bit_identical_to_serial() {
        let serial = CompiledLibrary::with_jobs(AcceleratorConfig::planaria(), 1);
        let par = CompiledLibrary::with_jobs(AcceleratorConfig::planaria(), 4);
        for id in DnnId::ALL {
            assert_eq!(
                serial.get(id),
                par.get(id),
                "{id:?} differs across job counts"
            );
        }
    }
}
