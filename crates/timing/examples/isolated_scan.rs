//! Quick scan: isolated latency of each DNN on Planaria vs monolithic.
use planaria_arch::AcceleratorConfig;
use planaria_model::DnnId;
use planaria_timing::{time_dnn, ExecContext};

fn main() {
    let pl = AcceleratorConfig::planaria();
    let mono = AcceleratorConfig::monolithic();
    println!(
        "{:<16} {:>10} {:>10} {:>8}",
        "DNN", "mono(ms)", "plan(ms)", "speedup"
    );
    for id in DnnId::ALL {
        let net = id.build();
        let tm = time_dnn(&ExecContext::full_chip(&mono), &net);
        let tp = time_dnn(&ExecContext::full_chip(&pl), &net);
        println!(
            "{:<16} {:>10.3} {:>10.3} {:>8.2}",
            id.name(),
            tm.seconds(mono.freq_hz) * 1e3,
            tp.seconds(pl.freq_hz) * 1e3,
            tm.total_cycles.as_f64() / tp.total_cycles.as_f64()
        );
    }
}
