//! Whole-network timing: per-layer arrangement selection and aggregation.

use crate::context::ExecContext;
use crate::counts::AccessCounts;
use crate::layer::{best_arrangement_by_cycles, time_layer, LayerTiming};
use planaria_arch::Arrangement;
use planaria_model::units::Cycles;
use planaria_model::Dnn;
use planaria_telemetry::{Collector, Counter, Event, Metric, NullCollector};

/// A layer is DRAM-bound when streaming its bytes at peak bandwidth takes
/// at least this share of its modeled cycles.
const DRAM_BOUND_SHARE: f64 = 0.95;

/// The execution plan of one layer: chosen arrangement and its timing.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerPlan {
    /// Layer name (from the network description).
    pub name: String,
    /// Chosen arrangement (the trivial one for vector layers).
    pub arrangement: Arrangement,
    /// Timing of a single execution.
    pub timing: LayerTiming,
    /// Sequential repetitions (GNMT time-steps).
    pub repeat: u64,
}

impl LayerPlan {
    /// Total cycles including repetitions.
    pub fn total_cycles(&self) -> Cycles {
        self.timing.cycles * self.repeat
    }

    /// Total tiles including repetitions.
    pub fn total_tiles(&self) -> u64 {
        self.timing.tiles * self.repeat
    }
}

/// Timing of a whole network on a fixed allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct DnnTiming {
    /// Per-layer plans in execution order.
    pub plans: Vec<LayerPlan>,
    /// End-to-end cycles.
    pub total_cycles: Cycles,
    /// Aggregated access statistics.
    pub counts: AccessCounts,
}

impl DnnTiming {
    /// End-to-end latency in seconds at the context's clock.
    pub fn seconds(&self, freq_hz: f64) -> f64 {
        self.total_cycles.seconds_at(freq_hz)
    }

    /// Total schedulable tiles.
    pub fn total_tiles(&self) -> u64 {
        self.plans.iter().map(LayerPlan::total_tiles).sum()
    }
}

/// Times `dnn` on the context's allocation, selecting each systolic layer's
/// arrangement by minimum cycles (energy-aware selection lives in
/// `planaria-compiler`).
pub fn time_dnn(ctx: &ExecContext, dnn: &Dnn) -> DnnTiming {
    time_dnn_with_collector(ctx, dnn, &mut NullCollector)
}

/// Like [`time_dnn`], streaming a per-layer execution profile into `c`:
/// one [`Event::LayerSlice`] per layer (with its DRAM-bound/compute-bound
/// classification), cycle counters for each class, and a utilization
/// histogram sample. Results are identical to [`time_dnn`].
pub fn time_dnn_with_collector<C: Collector>(ctx: &ExecContext, dnn: &Dnn, c: &mut C) -> DnnTiming {
    let mut plans = Vec::with_capacity(dnn.num_layers());
    let mut total_cycles = Cycles::ZERO;
    let mut counts = AccessCounts::zero();
    for (i, layer) in dnn.layers().iter().enumerate() {
        let (arrangement, timing) = if layer.op.is_systolic() {
            best_arrangement_by_cycles(ctx, &layer.op)
        } else {
            let arr = Arrangement::new(1, 1, 1);
            (arr, time_layer(ctx, &layer.op, arr))
        };
        if c.is_enabled() {
            let duration = timing.cycles * layer.repeat;
            let stream_cycles = timing.counts.dram_bytes.as_f64() / ctx.dram_bytes_per_cycle();
            let dram_bound = stream_cycles >= timing.cycles.as_f64() * DRAM_BOUND_SHARE;
            c.record(
                total_cycles,
                Event::LayerSlice {
                    layer: i as u32,
                    start: total_cycles,
                    duration,
                    tiles: timing.tiles * layer.repeat,
                    dram_bound,
                },
            );
            let class = if dram_bound {
                Counter::DramBoundCycles
            } else {
                Counter::ComputeBoundCycles
            };
            c.add(class, duration.get());
            c.sample(Metric::Utilization, timing.utilization);
        }
        total_cycles += timing.cycles * layer.repeat;
        counts += timing.counts.scaled(layer.repeat);
        plans.push(LayerPlan {
            name: layer.name.clone(),
            arrangement,
            timing,
            repeat: layer.repeat,
        });
    }
    DnnTiming {
        plans,
        total_cycles,
        counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planaria_arch::AcceleratorConfig;
    use planaria_model::DnnId;

    #[test]
    fn resnet50_latency_is_milliseconds() {
        let cfg = AcceleratorConfig::planaria();
        let ctx = ExecContext::full_chip(&cfg);
        let t = time_dnn(&ctx, &DnnId::ResNet50.build());
        let ms = t.seconds(cfg.freq_hz) * 1e3;
        // 4 GMACs on a 22.9 TOPS array: sub-ms ideal, a few ms with
        // realistic utilization.
        assert!(ms > 0.2 && ms < 15.0, "got {ms} ms");
    }

    #[test]
    fn fission_beats_monolithic_on_mobilenet() {
        let pl_cfg = AcceleratorConfig::planaria();
        let mono_cfg = AcceleratorConfig::monolithic();
        let net = DnnId::MobileNetV1.build();
        let pl = time_dnn(&ExecContext::full_chip(&pl_cfg), &net);
        let mono = time_dnn(&ExecContext::full_chip(&mono_cfg), &net);
        let speedup = mono.total_cycles.as_f64() / pl.total_cycles.as_f64();
        assert!(speedup > 2.0, "got {speedup:.2}x");
    }

    #[test]
    fn gnmt_gains_least_from_fission() {
        let pl_cfg = AcceleratorConfig::planaria();
        let mono_cfg = AcceleratorConfig::monolithic();
        let net = DnnId::Gnmt.build();
        let pl = time_dnn(&ExecContext::full_chip(&pl_cfg), &net);
        let mono = time_dnn(&ExecContext::full_chip(&mono_cfg), &net);
        let speedup = mono.total_cycles.as_f64() / pl.total_cycles.as_f64();
        assert!(
            speedup < 2.0,
            "GNMT speedup should be modest, got {speedup:.2}x"
        );
        assert!(
            speedup > 0.8,
            "fission should not hurt GNMT, got {speedup:.2}x"
        );
    }

    #[test]
    fn more_subarrays_never_slow_a_network_down() {
        let cfg = AcceleratorConfig::planaria();
        let net = DnnId::GoogLeNet.build();
        let mut prev = Cycles::new(u64::MAX);
        for s in [1u32, 2, 4, 8, 16] {
            let t = time_dnn(&ExecContext::for_allocation(&cfg, s), &net);
            assert!(
                t.total_cycles <= prev,
                "allocation {s} slower than smaller allocation"
            );
            prev = t.total_cycles;
        }
    }

    #[test]
    fn collector_path_matches_plain_and_profiles_every_layer() {
        use planaria_telemetry::RecordingCollector;
        let cfg = AcceleratorConfig::planaria();
        let ctx = ExecContext::full_chip(&cfg);
        let net = DnnId::MobileNetV1.build();
        let plain = time_dnn(&ctx, &net);
        let mut c = RecordingCollector::new();
        let profiled = time_dnn_with_collector(&ctx, &net, &mut c);
        assert_eq!(plain, profiled);
        let slices: Vec<_> = c
            .events()
            .iter()
            .filter_map(|te| match te.event {
                Event::LayerSlice {
                    duration,
                    dram_bound,
                    ..
                } => Some((duration, dram_bound)),
                _ => None,
            })
            .collect();
        assert_eq!(slices.len(), net.num_layers());
        let total: Cycles = slices.iter().map(|(d, _)| *d).sum();
        assert_eq!(total, plain.total_cycles);
        // The classification cycle counters partition the total.
        let dram = c.counter(Counter::DramBoundCycles);
        let compute = c.counter(Counter::ComputeBoundCycles);
        assert_eq!(dram + compute, plain.total_cycles.get());
        // MobileNet's depthwise layers are bandwidth-starved on the big
        // chip: at least one layer of each class must appear.
        assert!(slices.iter().any(|(_, b)| *b), "no DRAM-bound layer");
        assert!(slices.iter().any(|(_, b)| !*b), "no compute-bound layer");
    }

    #[test]
    fn counts_aggregate_over_repeats() {
        let cfg = AcceleratorConfig::planaria();
        let ctx = ExecContext::full_chip(&cfg);
        let t = time_dnn(&ctx, &DnnId::Gnmt.build());
        // GNMT performs ~4 GMACs; the aggregate counts must agree with the
        // model crate.
        assert_eq!(t.counts.mac_ops, DnnId::Gnmt.build().total_macs());
    }
}
