//! SIMD vector-unit timing (pooling, activations, normalization,
//! elementwise arithmetic, data movement).
//!
//! Each subarray owns a segment of SIMD lanes (§III-A item 3), so a logical
//! accelerator of `s` subarrays processes `s × lanes_per_subarray` elements
//! per cycle.

use crate::context::ExecContext;
use crate::counts::AccessCounts;
use crate::layer::LayerTiming;
use planaria_model::layer::ELEM_BYTES;
use planaria_model::units::{Bytes, Cycles};
use planaria_model::{EltwiseOp, EltwiseSpec, PoolSpec};

/// Vector-lane cycles per element for each elementwise operator.
pub fn op_cost(op: EltwiseOp) -> u64 {
    match op {
        EltwiseOp::Activation | EltwiseOp::Add | EltwiseOp::Mul | EltwiseOp::DataMove => 1,
        EltwiseOp::BatchNorm => 2,
        EltwiseOp::Softmax => 4,
    }
}

fn vector_timing(ctx: &ExecContext, ops: u64, in_bytes: u64, out_bytes: u64) -> LayerTiming {
    let lanes = ctx.simd_lanes().max(1);
    let cycles = ops.div_ceil(lanes).max(1);
    let counts = AccessCounts {
        mac_ops: 0,
        pe_active_cycles: Cycles::ZERO,
        act_sram_bytes: Bytes::new(in_bytes + out_bytes),
        psum_sram_bytes: Bytes::ZERO,
        wbuf_bytes: Bytes::ZERO,
        dram_bytes: Bytes::ZERO,
        ring_hop_bytes: Bytes::ZERO,
        vector_ops: ops,
    };
    LayerTiming {
        cycles: Cycles::new(cycles),
        tiles: 1,
        cycles_per_tile: Cycles::new(cycles),
        tile_bytes: Bytes::new(out_bytes),
        counts,
        utilization: 0.0,
    }
}

/// Times a pooling layer.
pub fn time_pool(ctx: &ExecContext, p: &PoolSpec) -> LayerTiming {
    let in_bytes = p.channels * p.in_h * p.in_w * ELEM_BYTES;
    let out_bytes = p.channels * p.out_h() * p.out_w() * ELEM_BYTES;
    vector_timing(ctx, p.vector_ops(), in_bytes, out_bytes)
}

/// Times an elementwise layer.
pub fn time_eltwise(ctx: &ExecContext, e: &EltwiseSpec) -> LayerTiming {
    let bytes = e.elems * ELEM_BYTES;
    vector_timing(ctx, e.elems * op_cost(e.op), bytes, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use planaria_arch::AcceleratorConfig;
    use planaria_model::PoolKind;

    #[test]
    fn pool_cycles_scale_with_lanes() {
        let cfg = AcceleratorConfig::planaria();
        let full = ExecContext::full_chip(&cfg);
        let quarter = ExecContext::for_allocation(&cfg, 4);
        let p = PoolSpec::new(PoolKind::Max, 64, 3, 3, 2, 112, 112);
        let a = time_pool(&full, &p);
        let b = time_pool(&quarter, &p);
        assert!(b.cycles > a.cycles * 3, "{} vs {}", b.cycles, a.cycles);
    }

    #[test]
    fn softmax_is_four_times_activation() {
        let cfg = AcceleratorConfig::planaria();
        let ctx = ExecContext::full_chip(&cfg);
        let n = 100_000;
        let act = time_eltwise(&ctx, &EltwiseSpec::new(EltwiseOp::Activation, n));
        let soft = time_eltwise(&ctx, &EltwiseSpec::new(EltwiseOp::Softmax, n));
        assert_eq!(soft.counts.vector_ops, 4 * act.counts.vector_ops);
    }

    #[test]
    fn tiny_op_takes_at_least_one_cycle() {
        let cfg = AcceleratorConfig::planaria();
        let ctx = ExecContext::full_chip(&cfg);
        let t = time_eltwise(&ctx, &EltwiseSpec::new(EltwiseOp::Add, 1));
        assert_eq!(t.cycles, Cycles::new(1));
    }
}
