//! Cycle-level timing model for DNN execution on (fissioned) systolic
//! accelerators.
//!
//! This crate is the substrate simulator of the reproduction: given an
//! operator shape from `planaria-model` and a logical-accelerator
//! [`Arrangement`](planaria_arch::Arrangement) from `planaria-arch`, it
//! produces cycle counts and access statistics (`AccessCounts`) for the
//! energy model.
//!
//! # Modelled first-order effects
//!
//! The model captures the effects the paper's evaluation hinges on:
//!
//! * **weight-stationary tiling** — a GEMM is tiled over the logical array
//!   (`⌈K/H⌉ × ⌈N/W⌉` weight tiles, with `M` chunked by on-chip buffer
//!   capacity), so *ceil effects* underutilize a big monolithic array on
//!   small layers (§III-A);
//! * **streaming vs. memory bound** — per-tile time is the streamed row
//!   count; layer time is the max of compute and DRAM traffic over the
//!   allocation's channels (GNMT is DRAM-bound, which is why it gains least
//!   from fission — Fig. 17);
//! * **depthwise column mapping** — a depthwise filter occupies one column
//!   of a cluster, so a monolithic array runs one channel at a time while
//!   `g` fissioned clusters run `g` channels in parallel (§VI-B2);
//! * **pipeline fill/drain and ring latency** — paid per layer, scaled by
//!   the logical array span;
//! * **reconfiguration** — drain + one-tile checkpoint + configuration
//!   swap + weight refill, paid when the scheduler re-allocates (§IV-C).
//!
//! # Example
//!
//! ```
//! use planaria_arch::{AcceleratorConfig, Arrangement};
//! use planaria_model::{ConvSpec, LayerOp};
//! use planaria_timing::{ExecContext, time_layer};
//!
//! let cfg = AcceleratorConfig::planaria();
//! let ctx = ExecContext::full_chip(&cfg);
//! let conv = LayerOp::Conv(ConvSpec::new(64, 64, 3, 3, 1, 1, 56, 56));
//! let t = time_layer(&ctx, &conv, Arrangement::new(1, 4, 4));
//! assert!(t.cycles.get() > 0);
//! ```

pub mod context;
pub mod counts;
pub mod depthwise;
pub mod dnn;
pub mod gemm;
pub mod layer;
pub mod reconfig;
pub mod vector;

pub use context::ExecContext;
pub use counts::AccessCounts;
pub use dnn::{time_dnn, time_dnn_with_collector, DnnTiming, LayerPlan};
pub use layer::{best_arrangement_by_cycles, time_layer, LayerTiming};
pub use reconfig::{reconfiguration_cycles, ReconfigCost, CONFIG_LOAD_CYCLES};
