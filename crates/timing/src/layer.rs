//! Per-layer timing dispatch and arrangement selection.

use crate::context::ExecContext;
use crate::counts::AccessCounts;
use crate::depthwise::time_depthwise;
use crate::gemm::time_gemm;
use crate::vector::{time_eltwise, time_pool};
use planaria_arch::Arrangement;
use planaria_model::units::{Bytes, Cycles};
use planaria_model::LayerOp;

/// Timing result for one layer execution on one arrangement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerTiming {
    /// Total cycles for one execution of the layer.
    pub cycles: Cycles,
    /// Number of schedulable tiles (the preemption granularity, §V).
    pub tiles: u64,
    /// Representative cycles per tile (`cycles / tiles`).
    pub cycles_per_tile: Cycles,
    /// In-flight state of one tile (the checkpoint written to DRAM when the
    /// scheduler preempts at a tile boundary, §V).
    pub tile_bytes: Bytes,
    /// Access statistics for the energy model.
    pub counts: AccessCounts,
    /// Effective MAC utilization of the allocation's PEs (0 for vector
    /// layers).
    pub utilization: f64,
}

/// Times one execution of `op` on arrangement `arr`.
///
/// Vector-unit layers (pool/elementwise) ignore `arr` — they run on the
/// allocation's SIMD segments.
pub fn time_layer(ctx: &ExecContext, op: &LayerOp, arr: Arrangement) -> LayerTiming {
    debug_assert!(
        !op.is_systolic() || arr.subarrays() <= ctx.subarrays,
        "arrangement uses more subarrays than the allocation owns"
    );
    match op {
        LayerOp::Conv(c) => time_gemm(ctx, c.gemm(), arr, Bytes::new(op.input_bytes())),
        LayerOp::MatMul(m) => time_gemm(ctx, m.shape, arr, Bytes::new(op.input_bytes())),
        LayerOp::Depthwise(d) => time_depthwise(ctx, d, arr),
        LayerOp::Pool(p) => time_pool(ctx, p),
        LayerOp::Eltwise(e) => time_eltwise(ctx, e),
    }
}

/// Energy-proxy used to break ties between arrangements with equal cycle
/// counts: on-chip traffic weighted by rough per-byte cost ratios
/// (the real selection with the calibrated energy model lives in
/// `planaria-compiler`).
pub fn traffic_proxy(c: &AccessCounts) -> u64 {
    c.act_sram_bytes.get()
        + 2 * c.psum_sram_bytes.get()
        + c.wbuf_bytes.get() / 4
        + 8 * c.dram_bytes.get()
        + c.ring_hop_bytes.get() / 2
}

/// Picks the arrangement of the allocation's subarrays minimizing cycles
/// (ties broken by [`traffic_proxy`]). Returns the arrangement and its
/// timing.
///
/// # Panics
///
/// Panics if `op` is a vector-unit layer (those have no arrangement choice).
pub fn best_arrangement_by_cycles(ctx: &ExecContext, op: &LayerOp) -> (Arrangement, LayerTiming) {
    assert!(op.is_systolic(), "vector layers have no arrangement choice");
    let mut best: Option<(Arrangement, LayerTiming)> = None;
    for arr in Arrangement::enumerate_for(&ctx.cfg, ctx.subarrays) {
        let t = time_layer(ctx, op, arr);
        let better = match &best {
            None => true,
            Some((_, bt)) => {
                t.cycles < bt.cycles
                    || (t.cycles == bt.cycles
                        && traffic_proxy(&t.counts) < traffic_proxy(&bt.counts))
            }
        };
        if better {
            best = Some((arr, t));
        }
    }
    // lint: enumerate_for always yields at least the trivial arrangement
    best.expect("at least one arrangement exists")
}

#[cfg(test)]
mod tests {
    use super::*;
    use planaria_arch::AcceleratorConfig;
    use planaria_model::{ConvSpec, DepthwiseSpec, EltwiseOp, EltwiseSpec, MatMulSpec};

    fn ctx() -> ExecContext {
        ExecContext::full_chip(&AcceleratorConfig::planaria())
    }

    #[test]
    fn depthwise_prefers_max_parallelism() {
        let op = LayerOp::Depthwise(DepthwiseSpec::new(512, 3, 3, 1, 1, 14, 14));
        let (arr, _) = best_arrangement_by_cycles(&ctx(), &op);
        assert_eq!(
            arr.clusters, 16,
            "depthwise should fission fully, got {arr}"
        );
    }

    #[test]
    fn large_dense_conv_keeps_large_arrays() {
        // ResNet-50 res4 3x3: K = 2304, N = 256 — deep reduction favors
        // few, large clusters.
        let op = LayerOp::Conv(ConvSpec::new(256, 256, 3, 3, 1, 1, 14, 14));
        let (arr, t) = best_arrangement_by_cycles(&ctx(), &op);
        // Deep reduction (K = 2304) keeps each cluster at least 2 subarrays
        // tall/wide and achieves high utilization.
        assert!(arr.rows * arr.cols >= 2, "got {arr}");
        assert!(t.utilization > 0.5, "got {}", t.utilization);
    }

    #[test]
    fn gnmt_gate_prefers_tall_shape() {
        // M = 1, K = 2048, N = 4096: DRAM-bound; tall shapes cut partial-sum
        // traffic, reproducing Table II's (256x64) pick for GNMT.
        let op = LayerOp::MatMul(MatMulSpec::new(1, 2048, 4096));
        let (arr, _) = best_arrangement_by_cycles(&ctx(), &op);
        assert!(arr.rows > arr.cols, "expected tall arrangement, got {arr}");
    }

    #[test]
    fn vector_layer_timing_ignores_arrangement() {
        let op = LayerOp::Eltwise(EltwiseSpec::new(EltwiseOp::Add, 1000));
        let a = time_layer(&ctx(), &op, Arrangement::new(1, 4, 4));
        let b = time_layer(&ctx(), &op, Arrangement::new(16, 1, 1));
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    #[should_panic(expected = "no arrangement choice")]
    fn best_arrangement_rejects_vector_layers() {
        let op = LayerOp::Eltwise(EltwiseSpec::new(EltwiseOp::Add, 10));
        let _ = best_arrangement_by_cycles(&ctx(), &op);
    }

    #[test]
    fn smaller_allocations_never_beat_full_chip_on_dense_convs() {
        let cfg = AcceleratorConfig::planaria();
        let op = LayerOp::Conv(ConvSpec::new(256, 512, 3, 3, 1, 1, 28, 28));
        let full = best_arrangement_by_cycles(&ExecContext::full_chip(&cfg), &op).1;
        let quarter = best_arrangement_by_cycles(&ExecContext::for_allocation(&cfg, 4), &op).1;
        assert!(quarter.cycles >= full.cycles);
    }
}
