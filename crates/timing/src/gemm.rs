//! Dense GEMM timing on a (possibly fissioned) weight-stationary logical
//! array.
//!
//! A GEMM `M×K×N` executes on `g` clusters of `H×W` PEs. Clusters split
//! either the `N` dimension (disjoint output channels; no weight
//! duplication) or the `M` dimension (disjoint output rows; weights are
//! broadcast over the ring). Within a cluster, weights tile as
//! `⌈K/H⌉ × ⌈N_c/W⌉`; the streamed row count per tile (`M_t`) is limited by
//! the output-buffer share (partial sums are 32-bit and accumulate on-chip)
//! and the activation-buffer share.

use crate::context::ExecContext;
use crate::counts::AccessCounts;
use crate::layer::LayerTiming;
use planaria_arch::Arrangement;
use planaria_model::layer::{ACC_BYTES, ELEM_BYTES};
use planaria_model::units::{Bytes, Cycles};
use planaria_model::GemmShape;

/// Pipeline bubble when switching the stationary weight tile (the weights
/// are double-buffered in the PEs, §IV-C).
pub const TILE_SWITCH_CYCLES: u64 = 2;

/// How a GEMM is partitioned across clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClusterSplit {
    /// Clusters own disjoint output-feature ranges.
    OutputFeatures,
    /// Clusters own disjoint streamed-row ranges (weights broadcast).
    StreamedRows,
}

/// Pipeline fill latency of an arrangement: array skew plus ring pipeline
/// registers crossed when the cluster spans multiple subarrays.
pub(crate) fn fill_cycles(ctx: &ExecContext, arr: Arrangement) -> u64 {
    let dim = ctx.cfg.subarray_dim;
    let skew = arr.height(dim) + arr.width(dim);
    let crossings = u64::from(arr.rows + arr.cols - 2);
    skew + crossings * u64::from(ctx.cfg.ring_pipeline_regs)
}

/// Times a GEMM under one split strategy.
fn time_split(
    ctx: &ExecContext,
    gemm: GemmShape,
    arr: Arrangement,
    split: ClusterSplit,
    input_footprint: Bytes,
) -> LayerTiming {
    let dim = ctx.cfg.subarray_dim;
    let h = arr.height(dim);
    let w = arr.width(dim);
    let g = u64::from(arr.clusters);

    let (m_c, n_c) = match split {
        ClusterSplit::OutputFeatures => (gemm.m, gemm.n.div_ceil(g)),
        ClusterSplit::StreamedRows => (gemm.m.div_ceil(g), gemm.n),
    };

    let k_tiles = gemm.k.div_ceil(h);
    let n_tiles = n_c.div_ceil(w);

    // Streamed rows per tile, bounded by the per-cluster buffer shares.
    let out_share = ctx.out_buffer_bytes().get() / g;
    let act_share = ctx.act_buffer_bytes().get() / g;
    let by_out = out_share / (ACC_BYTES * w).max(1);
    let by_act = act_share / (gemm.k * ELEM_BYTES).max(1);
    let m_t = m_c.min(by_out).min(by_act.max(1)).max(1);
    let m_chunks = m_c.div_ceil(m_t);
    let tiles = m_chunks * k_tiles * n_tiles;

    // Every streamed row enters once per (k, n) weight tile; weight switches
    // are double-buffered so each tile adds only a small bubble.
    let compute = m_c * k_tiles * n_tiles + tiles * TILE_SWITCH_CYCLES + fill_cycles(ctx, arr);

    // Weight residency: when a cluster's weight slice fits its per-PE
    // buffers it streams from DRAM once, otherwise once per M chunk.
    let cluster_weights = gemm.k * n_c * ELEM_BYTES;
    let cluster_wbuf = ctx.weight_buffer_bytes().get() / g;
    let weight_passes = if cluster_weights <= cluster_wbuf {
        1
    } else {
        m_chunks
    };
    let weight_dram = gemm.k * gemm.n * ELEM_BYTES * weight_passes;

    // Inter-layer activations live in Pod Memory: off-chip traffic occurs
    // only when an operand exceeds the allocation's activation-buffer share
    // (spill), in which case the input is re-streamed once per N-tile sweep.
    let input_dram = if input_footprint <= ctx.act_buffer_bytes() {
        0
    } else {
        input_footprint.get() * n_tiles
    };
    let output_dram = if gemm.output_bytes() <= ctx.act_buffer_bytes().get() {
        0
    } else {
        gemm.output_bytes()
    };
    let dram_bytes = weight_dram + input_dram + output_dram;
    let dram_cycles = (dram_bytes as f64 / ctx.dram_bytes_per_cycle()).ceil() as u64;

    let cycles = compute.max(dram_cycles);

    // SRAM / ring traffic for the energy model. Bank accesses are *padded*
    // to the physical array: every streamed row activates all H row-banks
    // and every drained row all W column-lanes, whether or not K and N
    // fill them — the utilization waste a monolithic array pays on small
    // layers and fission avoids by matching the array to the layer.
    let padded_k = h * k_tiles;
    let padded_n = w * n_tiles;
    let act_sram = g * m_c * padded_k * n_tiles * ELEM_BYTES;
    let psum_sram = g * m_c * padded_n * (2 * k_tiles - 1) * ACC_BYTES;
    let wbuf = g * padded_k * padded_n * ELEM_BYTES * m_chunks;
    let act_hops = act_sram * u64::from(arr.cols - 1);
    let psum_hops = g * m_c * padded_n * k_tiles * ACC_BYTES * u64::from(arr.rows - 1);
    let bcast_hops = match split {
        ClusterSplit::StreamedRows => weight_dram * (g - 1),
        ClusterSplit::OutputFeatures => 0,
    };

    let counts = AccessCounts {
        mac_ops: gemm.macs(),
        pe_active_cycles: Cycles::new(g * h * w * cycles),
        act_sram_bytes: Bytes::new(act_sram),
        psum_sram_bytes: Bytes::new(psum_sram),
        wbuf_bytes: Bytes::new(wbuf),
        dram_bytes: Bytes::new(dram_bytes),
        ring_hop_bytes: Bytes::new(act_hops + psum_hops + bcast_hops),
        vector_ops: 0,
    };

    let pes = g * h * w;
    let utilization = gemm.macs() as f64 / (pes * cycles).max(1) as f64;

    LayerTiming {
        cycles: Cycles::new(cycles),
        tiles,
        cycles_per_tile: Cycles::new((cycles / tiles.max(1)).max(1)),
        tile_bytes: Bytes::new(m_t * w * ACC_BYTES),
        counts,
        utilization,
    }
}

/// Times a GEMM on `arr`, choosing the better cluster split.
///
/// `input_footprint` is the true input operand size (feature map for
/// convolutions — smaller than `m·k` because of window overlap).
pub fn time_gemm(
    ctx: &ExecContext,
    gemm: GemmShape,
    arr: Arrangement,
    input_footprint: Bytes,
) -> LayerTiming {
    let a = time_split(
        ctx,
        gemm,
        arr,
        ClusterSplit::OutputFeatures,
        input_footprint,
    );
    if arr.clusters == 1 {
        return a;
    }
    let b = time_split(ctx, gemm, arr, ClusterSplit::StreamedRows, input_footprint);
    if b.cycles < a.cycles {
        b
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planaria_arch::AcceleratorConfig;

    fn ctx() -> ExecContext {
        ExecContext::full_chip(&AcceleratorConfig::planaria())
    }

    fn mono_ctx() -> ExecContext {
        ExecContext::full_chip(&AcceleratorConfig::monolithic())
    }

    #[test]
    fn perfectly_sized_gemm_is_stream_bound() {
        // K = 128, N = 128 on the 4x4 (=128x128) arrangement: one weight
        // tile, so cycles ≈ M.
        let c = ctx();
        let g = GemmShape::new(10_000, 128, 128);
        let t = time_gemm(
            &c,
            g,
            Arrangement::new(1, 4, 4),
            Bytes::new(g.input_bytes()),
        );
        assert!(t.cycles.get() >= 10_000);
        assert!(t.cycles.get() < 13_000, "got {}", t.cycles);
        assert!(t.utilization > 0.75, "got {}", t.utilization);
    }

    #[test]
    fn tiny_gemm_underutilizes_monolithic_array() {
        // K = 27, N = 16 (Tiny YOLO conv1): the monolithic array can't be
        // fed faster than one row/cycle regardless of its 16K PEs.
        let g = GemmShape::new(173_056, 27, 16);
        let fm = Bytes::new(416 * 416 * 3);
        let mono = time_gemm(&mono_ctx(), g, Arrangement::new(1, 1, 1), fm);
        assert!(mono.utilization < 0.05, "got {}", mono.utilization);
        // 16 clusters split the rows and finish ~an order of magnitude faster.
        let fis = time_gemm(&ctx(), g, Arrangement::new(16, 1, 1), fm);
        assert!(
            fis.cycles * 8 < mono.cycles,
            "fissioned {} vs monolithic {}",
            fis.cycles,
            mono.cycles
        );
    }

    #[test]
    fn m1_gemm_is_dram_bound() {
        // GNMT gate GEMM: M = 1, K = 2048, N = 4096 → 8 MB of weights
        // dominates; compute is trivial.
        let c = ctx();
        let g = GemmShape::new(1, 2048, 4096);
        let t = time_gemm(
            &c,
            g,
            Arrangement::new(1, 4, 4),
            Bytes::new(g.input_bytes()),
        );
        let dram_floor = (g.weight_bytes() as f64 / c.dram_bytes_per_cycle()) as u64;
        assert!(t.cycles.get() >= dram_floor);
        assert!(t.cycles.get() < dram_floor * 2);
    }

    #[test]
    fn taller_arrays_cut_psum_traffic() {
        let c = ctx();
        let g = GemmShape::new(1, 2048, 4096);
        let fm = Bytes::new(g.input_bytes());
        let square = time_gemm(&c, g, Arrangement::new(1, 4, 4), fm);
        let tall = time_gemm(&c, g, Arrangement::new(1, 8, 2), fm);
        assert!(tall.counts.psum_sram_bytes < square.counts.psum_sram_bytes);
    }

    #[test]
    fn split_rows_beats_split_features_for_wide_m() {
        // Huge M, tiny N: splitting rows gives each cluster real work while
        // splitting 16 output features over 16 clusters starves columns.
        let c = ctx();
        let g = GemmShape::new(100_000, 32, 16);
        let t = time_gemm(
            &c,
            g,
            Arrangement::new(16, 1, 1),
            Bytes::new(g.input_bytes()),
        );
        // Row split => ~M/16 + overheads.
        assert!(t.cycles.get() < 100_000 / 8, "got {}", t.cycles);
    }

    #[test]
    fn weight_streaming_repeats_when_buffers_overflow() {
        // A weight slice far larger than the weight buffers with many M
        // chunks forces multiple DRAM passes.
        let c = mono_ctx();
        let g = GemmShape::new(2_000_000, 4096, 4096); // 16 MB weights
        let t = time_gemm(
            &c,
            g,
            Arrangement::new(1, 1, 1),
            Bytes::new(g.input_bytes()),
        );
        assert!(t.counts.dram_bytes.get() > g.weight_bytes() * 2);
    }

    #[test]
    fn tiles_and_cycles_consistent() {
        let c = ctx();
        let g = GemmShape::new(3000, 300, 300);
        let t = time_gemm(
            &c,
            g,
            Arrangement::new(1, 4, 4),
            Bytes::new(g.input_bytes()),
        );
        assert!(t.tiles >= 1);
        assert!(t.cycles_per_tile * t.tiles <= t.cycles + t.cycles_per_tile * 2);
    }

    #[test]
    fn fill_cycles_grow_with_span() {
        let c = ctx();
        let small = fill_cycles(&c, Arrangement::new(16, 1, 1));
        let serp = fill_cycles(&c, Arrangement::new(1, 1, 16));
        assert!(serp > small);
    }
}
