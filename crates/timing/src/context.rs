//! Execution context: the slice of the chip a logical accelerator owns.

use planaria_arch::AcceleratorConfig;
use planaria_model::units::Bytes;

/// Resources available to one logical accelerator while executing a layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecContext {
    /// Chip configuration.
    pub cfg: AcceleratorConfig,
    /// Subarrays owned by this logical accelerator.
    pub subarrays: u32,
    /// Pro-rata share of the chip's DRAM channels. Fractional: co-located
    /// tenants in one pod share that pod's channel, so an allocation of `s`
    /// granules out of 16 owns `s/4` channels — bandwidth is conserved
    /// across tenants.
    pub dram_channels: f64,
    /// On-chip activation+output buffer share.
    pub buffer_bytes: Bytes,
}

impl ExecContext {
    /// Context for an allocation of `subarrays` granules, with the pro-rata
    /// buffer share and one DRAM channel per spanned pod.
    ///
    /// # Panics
    ///
    /// Panics if `subarrays` is zero or exceeds the chip.
    pub fn for_allocation(cfg: &AcceleratorConfig, subarrays: u32) -> Self {
        assert!(
            subarrays >= 1 && subarrays <= cfg.num_subarrays(),
            "allocation of {subarrays} subarrays out of range 1..={}",
            cfg.num_subarrays()
        );
        let channels =
            f64::from(subarrays) * f64::from(cfg.dram_channels) / f64::from(cfg.num_subarrays());
        Self {
            cfg: *cfg,
            subarrays,
            dram_channels: channels,
            buffer_bytes: Bytes::new(cfg.buffer_share(subarrays)),
        }
    }

    /// Context owning the entire chip.
    pub fn full_chip(cfg: &AcceleratorConfig) -> Self {
        Self::for_allocation(cfg, cfg.num_subarrays())
    }

    /// Activation-buffer share (2/3 of the buffer, the TPU-like split).
    pub fn act_buffer_bytes(&self) -> Bytes {
        self.buffer_bytes * 2 / 3
    }

    /// Output-buffer share (remaining 1/3).
    pub fn out_buffer_bytes(&self) -> Bytes {
        self.buffer_bytes - self.act_buffer_bytes()
    }

    /// Weight-buffer capacity across the allocation (per-PE buffers).
    pub fn weight_buffer_bytes(&self) -> Bytes {
        let pes = u64::from(self.subarrays)
            * u64::from(self.cfg.subarray_dim)
            * u64::from(self.cfg.subarray_dim);
        Bytes::new(pes * self.cfg.weight_buffer_per_pe)
    }

    /// Off-chip bytes per cycle over this allocation's bandwidth share.
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_channels * self.cfg.dram_bw_per_channel / self.cfg.freq_hz
    }

    /// SIMD lanes across the allocation.
    pub fn simd_lanes(&self) -> u64 {
        u64::from(self.subarrays) * u64::from(self.cfg.simd_lanes_per_subarray)
    }

    /// Total PEs in the allocation.
    pub fn pes(&self) -> u64 {
        u64::from(self.subarrays)
            * u64::from(self.cfg.subarray_dim)
            * u64::from(self.cfg.subarray_dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_chip_gets_everything() {
        let cfg = AcceleratorConfig::planaria();
        let ctx = ExecContext::full_chip(&cfg);
        assert_eq!(ctx.subarrays, 16);
        assert!((ctx.dram_channels - 4.0).abs() < 1e-9);
        assert_eq!(ctx.buffer_bytes, Bytes::new(cfg.onchip_buffer_bytes));
        assert_eq!(ctx.pes(), 16_384);
        assert_eq!(ctx.simd_lanes(), 512);
    }

    #[test]
    fn bandwidth_shares_are_pro_rata_and_conserved() {
        let cfg = AcceleratorConfig::planaria();
        let total: f64 = (0..4)
            .map(|_| ExecContext::for_allocation(&cfg, 4).dram_channels)
            .sum();
        assert!(
            (total - 4.0).abs() < 1e-9,
            "four quarter-tenants own the chip"
        );
        assert!((ExecContext::for_allocation(&cfg, 1).dram_channels - 0.25).abs() < 1e-9);
        assert!((ExecContext::for_allocation(&cfg, 9).dram_channels - 2.25).abs() < 1e-9);
    }

    #[test]
    fn buffer_split_two_to_one() {
        let cfg = AcceleratorConfig::planaria();
        let ctx = ExecContext::full_chip(&cfg);
        assert_eq!(
            ctx.act_buffer_bytes() + ctx.out_buffer_bytes(),
            ctx.buffer_bytes
        );
        assert!(ctx.act_buffer_bytes() > ctx.out_buffer_bytes());
    }

    #[test]
    fn monolithic_context() {
        let cfg = AcceleratorConfig::monolithic();
        let ctx = ExecContext::full_chip(&cfg);
        assert_eq!(ctx.subarrays, 1);
        assert_eq!(ctx.pes(), 16_384);
        // The monolithic baseline keeps all four DRAM channels.
        assert!((ctx.dram_channels - 4.0).abs() < 1e-9);
        assert_eq!(ctx.simd_lanes(), 128);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_allocation_panics() {
        let cfg = AcceleratorConfig::planaria();
        let _ = ExecContext::for_allocation(&cfg, 17);
    }
}
