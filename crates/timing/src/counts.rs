//! Access statistics produced by the timing model and consumed by the
//! energy model.

use planaria_model::units::{Bytes, Cycles};
use std::ops::{Add, AddAssign};

/// Event counts for one layer execution (or an aggregate of executions).
///
/// All byte counts are *access traffic* (reads + writes), not footprints.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessCounts {
    /// Effective multiply-accumulate operations performed.
    pub mac_ops: u64,
    /// PE-cycles of array activity (allocated PEs × cycles the array is
    /// streaming or stalled-but-clocked) — the utilization-dependent term
    /// that dominates energy on underutilized monolithic arrays.
    pub pe_active_cycles: Cycles,
    /// Activation-buffer (Pod Memory read-side) traffic.
    pub act_sram_bytes: Bytes,
    /// Output-buffer traffic including partial-sum accumulation.
    pub psum_sram_bytes: Bytes,
    /// Weight-buffer reads feeding the PEs.
    pub wbuf_bytes: Bytes,
    /// Off-chip DRAM traffic.
    pub dram_bytes: Bytes,
    /// Inter-subarray ring-bus traffic, byte-hops (bytes × hops).
    pub ring_hop_bytes: Bytes,
    /// SIMD vector-unit operations.
    pub vector_ops: u64,
}

impl AccessCounts {
    /// Zeroed counts.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Scales every count by `n` (used for `repeat`ed layers).
    pub fn scaled(&self, n: u64) -> Self {
        Self {
            mac_ops: self.mac_ops * n,
            pe_active_cycles: self.pe_active_cycles * n,
            act_sram_bytes: self.act_sram_bytes * n,
            psum_sram_bytes: self.psum_sram_bytes * n,
            wbuf_bytes: self.wbuf_bytes * n,
            dram_bytes: self.dram_bytes * n,
            ring_hop_bytes: self.ring_hop_bytes * n,
            vector_ops: self.vector_ops * n,
        }
    }
}

impl Add for AccessCounts {
    type Output = AccessCounts;

    fn add(self, rhs: AccessCounts) -> AccessCounts {
        AccessCounts {
            mac_ops: self.mac_ops + rhs.mac_ops,
            pe_active_cycles: self.pe_active_cycles + rhs.pe_active_cycles,
            act_sram_bytes: self.act_sram_bytes + rhs.act_sram_bytes,
            psum_sram_bytes: self.psum_sram_bytes + rhs.psum_sram_bytes,
            wbuf_bytes: self.wbuf_bytes + rhs.wbuf_bytes,
            dram_bytes: self.dram_bytes + rhs.dram_bytes,
            ring_hop_bytes: self.ring_hop_bytes + rhs.ring_hop_bytes,
            vector_ops: self.vector_ops + rhs.vector_ops,
        }
    }
}

impl AddAssign for AccessCounts {
    fn add_assign(&mut self, rhs: AccessCounts) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_scale() {
        let a = AccessCounts {
            mac_ops: 1,
            pe_active_cycles: Cycles::new(8),
            act_sram_bytes: Bytes::new(2),
            psum_sram_bytes: Bytes::new(3),
            wbuf_bytes: Bytes::new(4),
            dram_bytes: Bytes::new(5),
            ring_hop_bytes: Bytes::new(6),
            vector_ops: 7,
        };
        let b = a.scaled(2);
        assert_eq!(b.mac_ops, 2);
        assert_eq!(b.vector_ops, 14);
        let c = a + b;
        assert_eq!(c.dram_bytes, Bytes::new(15));
        let mut d = AccessCounts::zero();
        d += c;
        assert_eq!(d, c);
    }
}
