//! Depthwise-convolution timing.
//!
//! On a weight-stationary systolic array every column shares the streamed
//! activation row, so a depthwise filter (which has *no* cross-channel
//! reduction) vectorizes onto a single column: the filter's `kh·kw` taps map
//! along the column's rows and the column accumulates one channel while the
//! other `W-1` columns idle (§VI-B2 of the paper). A logical accelerator of
//! `g` independent clusters processes `g` channels concurrently — the source
//! of Planaria's up-to-16× utilization gain on depthwise layers.

use crate::context::ExecContext;
use crate::counts::AccessCounts;
use crate::gemm::{fill_cycles, TILE_SWITCH_CYCLES};
use crate::layer::LayerTiming;
use planaria_arch::Arrangement;
use planaria_model::layer::{ACC_BYTES, ELEM_BYTES};
use planaria_model::units::{Bytes, Cycles};
use planaria_model::DepthwiseSpec;

/// Times a depthwise convolution on `arr`.
pub fn time_depthwise(ctx: &ExecContext, dw: &DepthwiseSpec, arr: Arrangement) -> LayerTiming {
    let g = u64::from(arr.clusters);
    let m = dw.out_h() * dw.out_w();
    let k = dw.kh * dw.kw;

    // Channels round-robin over clusters; each channel streams its M output
    // positions through one column.
    let ch_per_cluster = dw.channels.div_ceil(g);
    let per_channel = m + k + TILE_SWITCH_CYCLES;
    let compute = ch_per_cluster * per_channel + fill_cycles(ctx, arr);

    // Same spill rule as the dense path: feature maps stay in Pod Memory
    // unless they exceed the activation-buffer share.
    let input_fm = dw.channels * dw.in_h * dw.in_w * ELEM_BYTES;
    let output_fm = dw.channels * m * ELEM_BYTES;
    let act_share = ctx.act_buffer_bytes().get();
    let input_dram = if input_fm <= act_share { 0 } else { input_fm };
    let output_dram = if output_fm <= act_share { 0 } else { output_fm };
    let dram_bytes = dw.weight_bytes() + input_dram + output_dram;
    let dram_cycles = (dram_bytes as f64 / ctx.dram_bytes_per_cycle()).ceil() as u64;

    let cycles = compute.max(dram_cycles);

    // Bank accesses are padded to the cluster height (the active column's
    // feed path spans all H rows), mirroring the dense-GEMM padding rule.
    let h = arr.height(ctx.cfg.subarray_dim);
    let padded_k = k.max(1).div_ceil(h).max(1) * h;
    let counts = AccessCounts {
        mac_ops: dw.macs(),
        pe_active_cycles: Cycles::new(ctx.pes() * cycles),
        // Each output position reads its (padded) filter window from the
        // activation buffer.
        act_sram_bytes: Bytes::new(dw.channels * m * padded_k * ELEM_BYTES),
        psum_sram_bytes: Bytes::new(dw.channels * m * ACC_BYTES),
        wbuf_bytes: Bytes::new(dw.weight_bytes()),
        dram_bytes: Bytes::new(dram_bytes),
        ring_hop_bytes: Bytes::ZERO,
        vector_ops: 0,
    };

    let pes = ctx.pes();
    let utilization = dw.macs() as f64 / (pes * cycles).max(1) as f64;
    let tiles = ch_per_cluster.max(1);

    LayerTiming {
        cycles: Cycles::new(cycles),
        tiles,
        cycles_per_tile: Cycles::new((cycles / tiles).max(1)),
        tile_bytes: Bytes::new(m * ACC_BYTES),
        counts,
        utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planaria_arch::AcceleratorConfig;

    fn dw_512() -> DepthwiseSpec {
        DepthwiseSpec::new(512, 3, 3, 1, 1, 14, 14)
    }

    #[test]
    fn monolithic_runs_one_channel_at_a_time() {
        let cfg = AcceleratorConfig::monolithic();
        let ctx = ExecContext::full_chip(&cfg);
        let t = time_depthwise(&ctx, &dw_512(), Arrangement::new(1, 1, 1));
        // 512 channels x ~(196 + 9) cycles.
        assert!(t.cycles.get() >= 512 * 196);
        assert!(t.utilization < 0.01);
    }

    #[test]
    fn sixteen_clusters_give_sixteenfold_parallelism() {
        let cfg = AcceleratorConfig::planaria();
        let ctx = ExecContext::full_chip(&cfg);
        let mono = time_depthwise(&ctx, &dw_512(), Arrangement::new(1, 4, 4));
        let fis = time_depthwise(&ctx, &dw_512(), Arrangement::new(16, 1, 1));
        let ratio = mono.cycles.as_f64() / fis.cycles.as_f64();
        assert!(ratio > 10.0, "expected ~16x, got {ratio:.1}x");
    }

    #[test]
    fn channel_remainder_rounds_up() {
        let cfg = AcceleratorConfig::planaria();
        let ctx = ExecContext::full_chip(&cfg);
        let dw = DepthwiseSpec::new(17, 3, 3, 1, 1, 14, 14);
        let t = time_depthwise(&ctx, &dw, Arrangement::new(16, 1, 1));
        // ceil(17/16) = 2 channel rounds.
        assert_eq!(t.tiles, 2);
    }

    #[test]
    fn mac_count_preserved() {
        let cfg = AcceleratorConfig::planaria();
        let ctx = ExecContext::full_chip(&cfg);
        let t = time_depthwise(&ctx, &dw_512(), Arrangement::new(4, 2, 2));
        assert_eq!(t.counts.mac_ops, dw_512().macs());
    }
}
