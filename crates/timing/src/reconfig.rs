//! Reconfiguration / preemption overhead model (§IV-C, §V).
//!
//! When the scheduler changes a task's allocation, the task finishes its
//! in-flight tile, drains the array, checkpoints that tile's intermediate
//! results to DRAM, commits the pre-loaded configuration registers, and
//! refills the new logical array's pipeline and stationary weights.

use crate::context::ExecContext;
use planaria_arch::Arrangement;

/// Breakdown of one reconfiguration event, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReconfigCost {
    /// Draining the in-flight wavefront of the old arrangement.
    pub drain: u64,
    /// Writing one tile of intermediate results to DRAM (tile-granularity
    /// checkpointing keeps this to a single tile, §V).
    pub checkpoint: u64,
    /// Committing the double-buffered configuration registers and fetching
    /// the first instructions of the new binary.
    pub config_swap: u64,
    /// Refilling the new arrangement's pipeline and stationary weights.
    pub refill: u64,
}

impl ReconfigCost {
    /// Total cycles.
    pub fn total(&self) -> u64 {
        self.drain + self.checkpoint + self.config_swap + self.refill
    }
}

/// Cycles to fetch the next configuration's instruction stream; §IV-C
/// prefetches during the drain, so only a small commit cost remains.
const CONFIG_SWAP_CYCLES: u64 = 16;

/// Computes the cost of switching a task from `old` to `new` arrangement,
/// checkpointing `tile_bytes` of in-flight results.
pub fn reconfiguration_cycles(
    ctx: &ExecContext,
    old: Arrangement,
    new: Arrangement,
    tile_bytes: u64,
) -> ReconfigCost {
    let dim = ctx.cfg.subarray_dim;
    let drain = old.height(dim) + old.width(dim);
    let checkpoint = (tile_bytes as f64 / ctx.dram_bytes_per_cycle()).ceil() as u64;
    let refill = new.height(dim) + new.width(dim);
    ReconfigCost {
        drain,
        checkpoint,
        config_swap: CONFIG_SWAP_CYCLES,
        refill,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planaria_arch::AcceleratorConfig;

    #[test]
    fn reconfig_is_microseconds_not_milliseconds() {
        let cfg = AcceleratorConfig::planaria();
        let ctx = ExecContext::full_chip(&cfg);
        let cost = reconfiguration_cycles(
            &ctx,
            Arrangement::new(1, 4, 4),
            Arrangement::new(4, 1, 1),
            64 * 1024,
        );
        // A 64 KB checkpoint over 4 channels ≈ 460 cycles; total well under
        // 10 µs at 700 MHz.
        let us = cost.total() as f64 / cfg.freq_hz * 1e6;
        assert!(us < 10.0, "reconfiguration took {us} µs");
        assert!(cost.total() > 0);
    }

    #[test]
    fn bigger_tiles_cost_more_to_checkpoint() {
        let cfg = AcceleratorConfig::planaria();
        let ctx = ExecContext::for_allocation(&cfg, 4);
        let a = Arrangement::new(1, 2, 2);
        let small = reconfiguration_cycles(&ctx, a, a, 1024);
        let big = reconfiguration_cycles(&ctx, a, a, 1024 * 1024);
        assert!(big.checkpoint > small.checkpoint * 100);
    }

    #[test]
    fn drain_scales_with_old_shape() {
        let cfg = AcceleratorConfig::planaria();
        let ctx = ExecContext::full_chip(&cfg);
        let tall = reconfiguration_cycles(
            &ctx,
            Arrangement::new(1, 16, 1),
            Arrangement::new(16, 1, 1),
            0,
        );
        let small = reconfiguration_cycles(
            &ctx,
            Arrangement::new(16, 1, 1),
            Arrangement::new(16, 1, 1),
            0,
        );
        assert!(tall.drain > small.drain);
    }
}
