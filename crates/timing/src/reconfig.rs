//! Reconfiguration / preemption overhead model (§IV-C, §V).
//!
//! When the scheduler changes a task's allocation, the task finishes its
//! in-flight tile, drains the array, checkpoints that tile's intermediate
//! results to DRAM, commits the pre-loaded configuration registers, and
//! refills the new logical array's pipeline and stationary weights.

use crate::context::ExecContext;
use planaria_arch::Arrangement;
use planaria_model::units::{Bytes, Cycles};

/// Breakdown of one reconfiguration event, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReconfigCost {
    /// Draining the in-flight wavefront of the old arrangement.
    pub drain: Cycles,
    /// Writing one tile of intermediate results to DRAM (tile-granularity
    /// checkpointing keeps this to a single tile, §V).
    pub checkpoint: Cycles,
    /// Committing the double-buffered configuration registers and fetching
    /// the first instructions of the new binary.
    pub config_swap: Cycles,
    /// Refilling the new arrangement's pipeline and stationary weights.
    pub refill: Cycles,
}

impl ReconfigCost {
    /// Total cycles.
    pub fn total(&self) -> Cycles {
        self.drain + self.checkpoint + self.config_swap + self.refill
    }
}

/// Cycles to fetch the next configuration's instruction stream; §IV-C
/// prefetches during the drain, so only a small commit cost remains.
const CONFIG_SWAP_CYCLES: Cycles = Cycles::new(16);

/// Cycles to load the configuration registers when a task starts fresh
/// on a newly fissioned logical accelerator (no drain/checkpoint/refill:
/// pipeline fill is already inside the configuration tables). Same
/// register-commit cost as [`ReconfigCost::config_swap`].
pub const CONFIG_LOAD_CYCLES: Cycles = CONFIG_SWAP_CYCLES;

/// Computes the cost of switching a task from `old` to `new` arrangement,
/// checkpointing `tile_bytes` of in-flight results.
pub fn reconfiguration_cycles(
    ctx: &ExecContext,
    old: Arrangement,
    new: Arrangement,
    tile_bytes: Bytes,
) -> ReconfigCost {
    let dim = ctx.cfg.subarray_dim;
    let drain = Cycles::new(old.height(dim) + old.width(dim));
    let checkpoint = Cycles::new((tile_bytes.as_f64() / ctx.dram_bytes_per_cycle()).ceil() as u64);
    let refill = Cycles::new(new.height(dim) + new.width(dim));
    ReconfigCost {
        drain,
        checkpoint,
        config_swap: CONFIG_SWAP_CYCLES,
        refill,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planaria_arch::AcceleratorConfig;

    #[test]
    fn reconfig_is_microseconds_not_milliseconds() {
        let cfg = AcceleratorConfig::planaria();
        let ctx = ExecContext::full_chip(&cfg);
        let cost = reconfiguration_cycles(
            &ctx,
            Arrangement::new(1, 4, 4),
            Arrangement::new(4, 1, 1),
            Bytes::new(64 * 1024),
        );
        // A 64 KB checkpoint over 4 channels ≈ 460 cycles; total well under
        // 10 µs at 700 MHz.
        let us = cost.total().seconds_at(cfg.freq_hz) * 1e6;
        assert!(us < 10.0, "reconfiguration took {us} µs");
        assert!(!cost.total().is_zero());
    }

    #[test]
    fn bigger_tiles_cost_more_to_checkpoint() {
        let cfg = AcceleratorConfig::planaria();
        let ctx = ExecContext::for_allocation(&cfg, 4);
        let a = Arrangement::new(1, 2, 2);
        let small = reconfiguration_cycles(&ctx, a, a, Bytes::new(1024));
        let big = reconfiguration_cycles(&ctx, a, a, Bytes::new(1024 * 1024));
        assert!(big.checkpoint > small.checkpoint * 100);
    }

    #[test]
    fn drain_scales_with_old_shape() {
        let cfg = AcceleratorConfig::planaria();
        let ctx = ExecContext::full_chip(&cfg);
        let tall = reconfiguration_cycles(
            &ctx,
            Arrangement::new(1, 16, 1),
            Arrangement::new(16, 1, 1),
            Bytes::ZERO,
        );
        let small = reconfiguration_cycles(
            &ctx,
            Arrangement::new(16, 1, 1),
            Arrangement::new(16, 1, 1),
            Bytes::ZERO,
        );
        assert!(tall.drain > small.drain);
    }
}
