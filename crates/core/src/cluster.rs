//! Scaled-out serving: multiple Planaria nodes behind a dispatcher
//! (the Fig. 16 experiment).
//!
//! Each DNN task is mapped to a single chip (§VI-B1: "each DNN task is
//! mapped to a single chip instead of being distributed across multiple
//! nodes"); the dispatcher sends every request to the node with the least
//! outstanding estimated work.

use crate::engine::PlanariaEngine;
use planaria_model::units::Picojoules;
use planaria_workload::{Completion, Request, SimResult};

/// Policy for spreading requests over the cluster's nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DispatchPolicy {
    /// Send each request to the node with the least outstanding estimated
    /// work (isolated latencies as the estimate).
    #[default]
    LeastWork,
    /// Cycle through nodes in arrival order.
    RoundRobin,
    /// Pin each network to a fixed node (weight locality: a node serves a
    /// model subset and never reloads foreign weights).
    DnnAffinity,
}

/// Splits a trace over `nodes` according to `policy`.
pub fn dispatch(
    engine: &PlanariaEngine,
    nodes: usize,
    trace: &[Request],
    policy: DispatchPolicy,
) -> Vec<Vec<Request>> {
    assert!(nodes > 0, "cluster needs at least one node");
    let mut per_node: Vec<Vec<Request>> = vec![Vec::new(); nodes];
    let mut horizons = vec![0.0f64; nodes];
    let mut rr = 0usize;
    for r in trace {
        let target = match policy {
            DispatchPolicy::LeastWork => {
                horizons
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    // lint: `horizons` has one entry per node and `nodes >= 1`
                    .expect("at least one node")
                    .0
            }
            DispatchPolicy::RoundRobin => {
                let t = rr;
                rr = (rr + 1) % nodes;
                t
            }
            DispatchPolicy::DnnAffinity => {
                let idx = planaria_model::DnnId::ALL
                    .iter()
                    .position(|&id| id == r.dnn)
                    .unwrap_or(0);
                idx % nodes
            }
        };
        per_node[target].push(*r);
        let work = engine.library().isolated_latency(r.dnn);
        horizons[target] = horizons[target].max(r.arrival) + work;
    }
    per_node
}

/// Runs a trace over `nodes` identical engines with least-outstanding-work
/// dispatch; returns the merged result.
///
/// # Panics
///
/// Panics if `nodes` is zero.
pub fn run_cluster(engine: &PlanariaEngine, nodes: usize, trace: &[Request]) -> SimResult {
    run_cluster_with(engine, nodes, trace, DispatchPolicy::LeastWork)
}

/// Runs a trace over `nodes` engines under an explicit dispatch policy.
///
/// # Panics
///
/// Panics if `nodes` is zero.
pub fn run_cluster_with(
    engine: &PlanariaEngine,
    nodes: usize,
    trace: &[Request],
    policy: DispatchPolicy,
) -> SimResult {
    let per_node = dispatch(engine, nodes, trace, policy);

    let mut completions: Vec<Completion> = Vec::new();
    let mut total_energy = Picojoules::ZERO;
    let mut makespan = 0.0f64;
    for node_trace in per_node {
        if node_trace.is_empty() {
            continue;
        }
        let r = engine.run(&node_trace);
        total_energy += r.total_energy;
        makespan = makespan.max(r.makespan);
        completions.extend(r.completions);
    }
    completions.sort_by_key(|c| c.request.id);
    SimResult {
        completions,
        total_energy,
        makespan,
    }
}

/// The minimum number of nodes achieving the SLA on every probe seed
/// (Fig. 16), up to `max_nodes`; `None` when even `max_nodes` fail.
pub fn min_nodes_for_sla<F>(run: F, max_nodes: usize) -> Option<usize>
where
    F: Fn(usize) -> bool,
{
    (1..=max_nodes).find(|&n| run(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use planaria_arch::AcceleratorConfig;
    use planaria_workload::{meets_sla, QosLevel, Scenario, TraceConfig};

    #[test]
    fn cluster_preserves_all_requests() {
        let e = PlanariaEngine::new(AcceleratorConfig::planaria());
        let trace = TraceConfig::new(Scenario::B, QosLevel::Soft, 300.0, 30, 5).generate();
        let r = run_cluster(&e, 3, &trace);
        assert_eq!(r.completions.len(), 30);
    }

    #[test]
    fn more_nodes_help_under_overload() {
        let e = PlanariaEngine::new(AcceleratorConfig::planaria());
        // Heavy overload of SSD-R requests.
        let trace = TraceConfig::new(Scenario::A, QosLevel::Soft, 120.0, 40, 5).generate();
        let one = run_cluster(&e, 1, &trace);
        let four = run_cluster(&e, 4, &trace);
        assert!(
            four.completions.iter().map(|c| c.latency()).sum::<f64>()
                < one.completions.iter().map(|c| c.latency()).sum::<f64>()
        );
    }

    #[test]
    fn min_nodes_search_is_monotone_first_true() {
        assert_eq!(min_nodes_for_sla(|n| n >= 3, 8), Some(3));
        assert_eq!(min_nodes_for_sla(|_| false, 4), None);
    }

    #[test]
    fn dispatch_policies_partition_the_trace() {
        let e = PlanariaEngine::new(AcceleratorConfig::planaria());
        let trace = TraceConfig::new(Scenario::C, QosLevel::Soft, 100.0, 45, 4).generate();
        for policy in [
            DispatchPolicy::LeastWork,
            DispatchPolicy::RoundRobin,
            DispatchPolicy::DnnAffinity,
        ] {
            let split = dispatch(&e, 3, &trace, policy);
            assert_eq!(split.iter().map(Vec::len).sum::<usize>(), 45, "{policy:?}");
        }
        // Affinity really pins networks: every node sees a disjoint set.
        let split = dispatch(&e, 3, &trace, DispatchPolicy::DnnAffinity);
        for (i, node) in split.iter().enumerate() {
            for (j, other) in split.iter().enumerate() {
                if i == j {
                    continue;
                }
                for r in node {
                    assert!(
                        !other.iter().any(|o| o.dnn == r.dnn),
                        "network {} on two nodes",
                        r.dnn
                    );
                }
            }
        }
    }

    #[test]
    fn round_robin_balances_counts() {
        let e = PlanariaEngine::new(AcceleratorConfig::planaria());
        let trace = TraceConfig::new(Scenario::A, QosLevel::Soft, 50.0, 30, 8).generate();
        let split = dispatch(&e, 3, &trace, DispatchPolicy::RoundRobin);
        assert!(split.iter().all(|n| n.len() == 10));
    }

    #[test]
    fn single_node_cluster_equals_engine() {
        let e = PlanariaEngine::new(AcceleratorConfig::planaria());
        let trace = TraceConfig::new(Scenario::B, QosLevel::Soft, 100.0, 15, 9).generate();
        let direct = e.run(&trace);
        let cluster = run_cluster(&e, 1, &trace);
        assert_eq!(direct.completions.len(), cluster.completions.len());
        assert!(meets_sla(&direct.completions) == meets_sla(&cluster.completions));
    }
}
