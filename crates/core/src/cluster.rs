//! Scaled-out serving: multiple Planaria nodes behind an online
//! dispatcher (the Fig. 16 experiment).
//!
//! Each DNN task is mapped to a single chip (§VI-B1: "each DNN task is
//! mapped to a single chip instead of being distributed across multiple
//! nodes"). Requests stream through a [`ClusterDispatcher`] into the
//! multi-node fabric ([`planaria_sim::run_fabric`]): one independent
//! kernel plus one Algorithm 1 policy per node, advanced in
//! epoch-synchronized rounds so the nodes fan out across cores while the
//! result stays byte-identical at any worker count.
//!
//! Dispatch accounting lives in the [`Cycles`] domain: the LeastWork
//! horizon per node is integer cycles on the fabric clock, and the work
//! estimate is the compiled full-chip cycle count from the timing memo
//! (`table(total).total_cycles()`), not a float-seconds latency requery.

use crate::engine::PlanariaEngine;
use planaria_compiler::CompiledLibrary;
use planaria_model::units::{Cycles, Picojoules};
use planaria_model::{DnnId, SplitMix64};
use planaria_sim::{
    run_fabric, run_fabric_summary, run_fabric_with, Dispatcher, FabricStats, FabricTuning,
    NodeLoad, SimClock,
};
use planaria_telemetry::{ClusterRecording, MetricsReport, RecordingCollector, StatsCollector};
use planaria_workload::{Request, SimResult};

/// Policy for spreading requests over the cluster's nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DispatchPolicy {
    /// Send each request to the node with the least outstanding estimated
    /// work (compiled full-chip cycle counts as the estimate).
    #[default]
    LeastWork,
    /// Cycle through nodes in arrival order.
    RoundRobin,
    /// Pin each network to a fixed node (weight locality: a node serves a
    /// model subset and never reloads foreign weights).
    DnnAffinity,
    /// Join the node with the fewest requests in flight (live tenants at
    /// the last barrier plus requests routed since).
    JoinShortestQueue,
    /// Sample two nodes uniformly and join the less loaded of the pair —
    /// the classic O(1) approximation of shortest-queue.
    PowerOfTwo,
    /// Deadline-aware routing: requests whose QoS budget is tight
    /// relative to their compiled work go to the least-loaded node;
    /// relaxed requests round-robin.
    QosAware,
    /// Geometry-aware routing for heterogeneous fleets: tight-deadline
    /// requests join the least-loaded node among those exposing the most
    /// fission granules (fine-granule chips carve out a logical
    /// accelerator soonest), relaxed requests the least-loaded among the
    /// coarsest nodes (big systolic granules serve batch traffic
    /// cheapest). The class preference is soft: when the preferred class
    /// runs much deeper than the emptiest node in the fleet the request
    /// spills to plain shortest-queue, so a skewed tight/relaxed mix
    /// cannot strand half the fleet idle. On a homogeneous fleet every
    /// node ties and this is exactly
    /// [`JoinShortestQueue`](DispatchPolicy::JoinShortestQueue).
    GeometryAware,
}

impl DispatchPolicy {
    /// Every dispatch policy, for sweeps and determinism tests.
    pub const ALL: [DispatchPolicy; 7] = [
        DispatchPolicy::LeastWork,
        DispatchPolicy::RoundRobin,
        DispatchPolicy::DnnAffinity,
        DispatchPolicy::JoinShortestQueue,
        DispatchPolicy::PowerOfTwo,
        DispatchPolicy::QosAware,
        DispatchPolicy::GeometryAware,
    ];
}

/// Fixed seed for the power-of-two sampler: routing must be a pure
/// function of the arrival stream, so every run draws the same sequence.
const POWER_OF_TWO_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// A request is QoS-tight when its whole budget is under this many times
/// its full-chip compiled latency — it cannot afford to queue behind
/// much, so [`DispatchPolicy::QosAware`] sends it to the emptiest node.
const QOS_TIGHT_FACTOR: u64 = 8;

/// Queue-depth slack before [`DispatchPolicy::GeometryAware`] spills a
/// request out of its preferred granularity class: the preferred node
/// may run this many requests deeper than the fleet's emptiest node
/// before shortest-queue takes over.
const GEOMETRY_SPILL_SLACK: usize = 2;

/// The online routing state behind every [`DispatchPolicy`], plugged
/// into the fabric as its [`Dispatcher`].
///
/// All state is in the cycle domain or integer counters: LeastWork
/// horizons are [`Cycles`] on the fabric clock, work estimates come from
/// the compiled timing tables once at construction, and the
/// power-of-two sampler is a seeded [`SplitMix64`].
#[derive(Debug, Clone)]
pub struct ClusterDispatcher {
    policy: DispatchPolicy,
    nodes: usize,
    nodes_u64: u64,
    /// Full-chip work per node per network: `work[node]` is indexed by
    /// [`DnnId::ALL`] position and holds that node's compiled full-chip
    /// cycle counts. Uniform fleets carry identical rows, so every
    /// homogeneous routing decision is unchanged from the
    /// single-geometry dispatcher.
    work: Vec<Vec<Cycles>>,
    /// Per-network best-case work across the fleet (the fastest node's
    /// full-chip cycles) — the geometry-independent yardstick the
    /// QoS-tightness tests compare deadlines against.
    min_work: Vec<Cycles>,
    /// LeastWork: when each node is estimated to drain, fabric-clock
    /// cycles.
    horizons: Vec<Cycles>,
    rr: usize,
    rng: SplitMix64,
}

impl ClusterDispatcher {
    /// A dispatcher over `nodes` identical nodes compiled in `library`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(library: &CompiledLibrary, nodes: usize, policy: DispatchPolicy) -> Self {
        assert!(nodes > 0, "cluster needs at least one node");
        let libraries = vec![library; nodes];
        Self::heterogeneous(&libraries, policy)
    }

    /// A dispatcher over nodes with per-node geometries: `libraries[i]`
    /// is node `i`'s compiled library, and every work estimate is looked
    /// up in the owning node's tables — a coarse-granule node and a
    /// fine-granule node advertise different full-chip cycle counts for
    /// the same network.
    ///
    /// # Panics
    ///
    /// Panics if `libraries` is empty.
    pub fn heterogeneous(libraries: &[&CompiledLibrary], policy: DispatchPolicy) -> Self {
        let nodes = libraries.len();
        assert!(nodes > 0, "cluster needs at least one node");
        let work: Vec<Vec<Cycles>> = libraries
            .iter()
            .map(|lib| {
                let total = lib.config().num_subarrays();
                DnnId::ALL
                    .iter()
                    .map(|&id| lib.get(id).table(total).total_cycles())
                    .collect()
            })
            .collect();
        let min_work = (0..DnnId::ALL.len())
            .map(|d| work.iter().map(|row| row[d]).min().unwrap_or(Cycles::ZERO))
            .collect();
        Self {
            policy,
            nodes,
            // lint: node counts are small; usize always fits u64 here
            nodes_u64: u64::try_from(nodes).expect("node count fits u64"),
            work,
            min_work,
            horizons: vec![Cycles::ZERO; nodes],
            rr: 0,
            rng: SplitMix64::new(POWER_OF_TWO_SEED),
        }
    }

    fn dnn_index(dnn: DnnId) -> usize {
        DnnId::ALL.iter().position(|&id| id == dnn).unwrap_or(0)
    }

    /// In-flight key: live tenants at the last barrier plus requests
    /// routed since, ties broken by remaining backlog.
    fn in_flight(load: &NodeLoad) -> (usize, Cycles) {
        (load.tenants + load.routed, load.backlog)
    }

    fn least_loaded(loads: &[NodeLoad]) -> usize {
        loads
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| Self::in_flight(l))
            .map_or(0, |(i, _)| i)
    }

    /// Least-loaded node among those whose granule count matches the
    /// fleet extreme: the finest chips (most subarrays) when `fine`,
    /// the coarsest otherwise. Homogeneous fleets tie everywhere, so
    /// this reduces to [`least_loaded`](Self::least_loaded).
    fn least_loaded_by_granularity(loads: &[NodeLoad], fine: bool) -> usize {
        let pick = loads.iter().map(|l| l.subarrays);
        let target = if fine {
            pick.max().unwrap_or(0)
        } else {
            pick.min().unwrap_or(0)
        };
        loads
            .iter()
            .enumerate()
            .filter(|(_, l)| l.subarrays == target)
            .min_by_key(|(_, l)| Self::in_flight(l))
            .map_or(0, |(i, _)| i)
    }

    fn next_round_robin(&mut self) -> usize {
        let t = self.rr;
        self.rr = (self.rr + 1) % self.nodes;
        t
    }
}

impl Dispatcher for ClusterDispatcher {
    fn route(&mut self, req: &Request, at: Cycles, clock: &SimClock, loads: &[NodeLoad]) -> usize {
        match self.policy {
            DispatchPolicy::LeastWork => {
                let target = self
                    .horizons
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, h)| **h)
                    .map_or(0, |(i, _)| i);
                // The chosen node's own estimate: heterogeneous chips
                // advertise different full-chip cycle counts.
                let work = self.work[target][Self::dnn_index(req.dnn)];
                self.horizons[target] = self.horizons[target].max(at) + work;
                target
            }
            DispatchPolicy::RoundRobin => self.next_round_robin(),
            DispatchPolicy::DnnAffinity => Self::dnn_index(req.dnn) % self.nodes,
            DispatchPolicy::JoinShortestQueue => Self::least_loaded(loads),
            DispatchPolicy::PowerOfTwo => {
                let a = usize::try_from(self.rng.next_below(self.nodes_u64))
                    // lint: next_below(n) < n <= usize::MAX
                    .expect("sample fits usize");
                let b = usize::try_from(self.rng.next_below(self.nodes_u64))
                    // lint: next_below(n) < n <= usize::MAX
                    .expect("sample fits usize");
                if Self::in_flight(&loads[b]) < Self::in_flight(&loads[a]) {
                    b
                } else {
                    a
                }
            }
            DispatchPolicy::QosAware => {
                let work = self.min_work[Self::dnn_index(req.dnn)];
                let budget = clock.duration_cycles(req.qos);
                if budget < work.saturating_mul(QOS_TIGHT_FACTOR) {
                    Self::least_loaded(loads)
                } else {
                    self.next_round_robin()
                }
            }
            DispatchPolicy::GeometryAware => {
                let work = self.min_work[Self::dnn_index(req.dnn)];
                let budget = clock.duration_cycles(req.qos);
                let tight = budget < work.saturating_mul(QOS_TIGHT_FACTOR);
                let preferred = Self::least_loaded_by_granularity(loads, tight);
                let fallback = Self::least_loaded(loads);
                let depth = |i: usize| loads[i].tenants + loads[i].routed;
                if depth(preferred) > depth(fallback).saturating_add(GEOMETRY_SPILL_SLACK) {
                    fallback
                } else {
                    preferred
                }
            }
        }
    }

    /// Only the queue-feedback policies read the barrier load snapshot;
    /// the open-loop ones are batched by count alone.
    fn feedback(&self) -> bool {
        matches!(
            self.policy,
            DispatchPolicy::JoinShortestQueue
                | DispatchPolicy::PowerOfTwo
                | DispatchPolicy::QosAware
                | DispatchPolicy::GeometryAware
        )
    }
}

/// Splits a trace over `nodes` according to `policy` — the offline
/// projection of the online dispatcher.
///
/// For the open-loop policies (LeastWork, RoundRobin, DnnAffinity) this
/// is exactly the routing the fabric performs: their decisions depend
/// only on the arrival stream and dispatcher-local state. The feedback
/// policies are projected with an empty load snapshot (only the
/// dispatcher's own routed counts feed back), so the split shows their
/// no-load balancing behavior.
///
/// # Panics
///
/// Panics if `nodes` is zero.
pub fn dispatch(
    engine: &PlanariaEngine,
    nodes: usize,
    trace: &[Request],
    policy: DispatchPolicy,
) -> Vec<Vec<Request>> {
    let clock = SimClock::new(
        trace.first().map_or(0.0, |r| r.arrival),
        engine.library().config().freq_hz,
    );
    let mut d = ClusterDispatcher::new(engine.library(), nodes, policy);
    // The projection is over identical nodes; stamp their (uniform)
    // capacity so geometry-reading policies see real values.
    let load0 = NodeLoad {
        subarrays: engine.library().config().num_subarrays(),
        pes: engine.library().config().total_pes(),
        ..NodeLoad::default()
    };
    let mut loads = vec![load0; nodes];
    let mut per_node: Vec<Vec<Request>> = vec![Vec::new(); nodes];
    for r in trace {
        let at = clock.cycles_from_seconds(r.arrival);
        let target = d.route(r, at, &clock, &loads);
        loads[target].routed += 1;
        per_node[target].push(*r);
    }
    per_node
}

/// Runs a trace over `nodes` identical engines with least-outstanding-work
/// dispatch; returns the merged result.
///
/// # Panics
///
/// Panics if `nodes` is zero or the trace is unsorted.
pub fn run_cluster(engine: &PlanariaEngine, nodes: usize, trace: &[Request]) -> SimResult {
    run_cluster_with(engine, nodes, trace, DispatchPolicy::LeastWork)
}

/// Runs a trace over `nodes` engines under an explicit dispatch policy.
///
/// # Panics
///
/// Panics if `nodes` is zero or the trace is unsorted.
pub fn run_cluster_with(
    engine: &PlanariaEngine,
    nodes: usize,
    trace: &[Request],
    policy: DispatchPolicy,
) -> SimResult {
    run_cluster_streamed(engine, nodes, trace.iter().copied(), policy)
}

/// [`run_cluster_with`] over a pull-based request source: the stream is
/// routed online and never materialized, so a million-request
/// [`TraceStream`](planaria_workload::TraceStream) serves a cluster with
/// O(live tenants + one dispatch window) resident requests.
///
/// # Panics
///
/// Panics if `nodes` is zero or the source yields arrivals out of order.
pub fn run_cluster_streamed<I: IntoIterator<Item = Request>>(
    engine: &PlanariaEngine,
    nodes: usize,
    requests: I,
    policy: DispatchPolicy,
) -> SimResult {
    run_cluster_fabric(engine, nodes, requests, policy, &FabricTuning::default()).0
}

/// The full-control cluster entry point: explicit fabric tuning, and the
/// fabric's aggregate event/round counters alongside the result.
///
/// # Panics
///
/// Panics if `nodes` is zero or the source yields arrivals out of order.
pub fn run_cluster_fabric<I: IntoIterator<Item = Request>>(
    engine: &PlanariaEngine,
    nodes: usize,
    requests: I,
    policy: DispatchPolicy,
    tuning: &FabricTuning,
) -> (SimResult, FabricStats) {
    assert!(nodes > 0, "cluster needs at least one node");
    let cfg = *engine.library().config();
    let cfgs = vec![cfg; nodes];
    let policies: Vec<_> = (0..nodes).map(|_| engine.spatial_policy()).collect();
    let mut d = ClusterDispatcher::new(engine.library(), nodes, policy);
    run_fabric(&cfgs, policies, requests, &mut d, tuning)
}

/// [`run_cluster_fabric`] with full telemetry: the fabric's dispatch
/// decisions, round barriers and load gauges land in one recorder, each
/// node's kernel events (arrivals, exec slices, completions, pod energy)
/// in its own, and the whole thing comes back as a [`ClusterRecording`]
/// whose node map is keyed by node id — deterministic merge order at any
/// `PLANARIA_JOBS`.
///
/// # Panics
///
/// Panics if `nodes` is zero or the source yields arrivals out of order.
pub fn run_cluster_recorded<I: IntoIterator<Item = Request>>(
    engine: &PlanariaEngine,
    nodes: usize,
    requests: I,
    policy: DispatchPolicy,
    tuning: &FabricTuning,
) -> (SimResult, FabricStats, ClusterRecording) {
    assert!(nodes > 0, "cluster needs at least one node");
    let cfg = *engine.library().config();
    let cfgs = vec![cfg; nodes];
    let policies: Vec<_> = (0..nodes).map(|_| engine.spatial_policy()).collect();
    let mut d = ClusterDispatcher::new(engine.library(), nodes, policy);
    let mut fabric = RecordingCollector::new();
    let sinks: Vec<RecordingCollector> = (0..nodes).map(|_| RecordingCollector::new()).collect();
    let (result, stats, sinks) = run_fabric_with(
        &cfgs,
        policies,
        requests,
        &mut d,
        tuning,
        &mut fabric,
        sinks,
    );
    let mut rec = ClusterRecording::new();
    rec.fabric = fabric;
    for (i, sink) in sinks.into_iter().enumerate() {
        rec.nodes.insert(u32::try_from(i).unwrap_or(u32::MAX), sink);
    }
    (result, stats, rec)
}

/// Aggregate result of the flat-memory cluster path: counts, energy and
/// percentile sketches without ever materializing a completion vector.
#[derive(Debug, Clone, Default)]
pub struct ClusterStats {
    /// Requests retired across all nodes.
    pub completed: u64,
    /// Dynamic plus static energy summed over nodes in node-id order.
    pub total_energy: Picojoules,
    /// Slowest node's makespan, seconds.
    pub makespan: f64,
    /// Fabric counters merged with every node's counters, histograms and
    /// quantile sketches (latency percentiles live in
    /// [`Metric::LatencyCycles`](planaria_telemetry::Metric::LatencyCycles)).
    pub metrics: MetricsReport,
}

/// The O(live tenants)-memory cluster: identical scheduling to
/// [`run_cluster_fabric`], but nodes keep only aggregate tallies plus
/// streaming sketches, so a 10^6-request run reports p50/p99 latency and
/// QoS satisfaction without a completion vector.
///
/// # Panics
///
/// Panics if `nodes` is zero or the source yields arrivals out of order.
pub fn run_cluster_stats<I: IntoIterator<Item = Request>>(
    engine: &PlanariaEngine,
    nodes: usize,
    requests: I,
    policy: DispatchPolicy,
    tuning: &FabricTuning,
) -> (ClusterStats, FabricStats) {
    assert!(nodes > 0, "cluster needs at least one node");
    let cfg = *engine.library().config();
    let cfgs = vec![cfg; nodes];
    let policies: Vec<_> = (0..nodes).map(|_| engine.spatial_policy()).collect();
    let mut d = ClusterDispatcher::new(engine.library(), nodes, policy);
    let mut fabric = StatsCollector::new();
    let sinks: Vec<StatsCollector> = (0..nodes).map(|_| StatsCollector::new()).collect();
    let (summary, stats, sinks) = run_fabric_summary(
        &cfgs,
        policies,
        requests,
        &mut d,
        tuning,
        &mut fabric,
        sinks,
    );
    let mut metrics = fabric.report();
    for sink in &sinks {
        metrics.merge(&sink.report());
    }
    (
        ClusterStats {
            completed: summary.completed,
            total_energy: summary.total_energy,
            makespan: summary.makespan,
            metrics,
        },
        stats,
    )
}

/// The minimum number of nodes achieving the SLA on every probe seed
/// (Fig. 16), up to `max_nodes`; `None` when even `max_nodes` fail.
pub fn min_nodes_for_sla<F>(run: F, max_nodes: usize) -> Option<usize>
where
    F: Fn(usize) -> bool,
{
    (1..=max_nodes).find(|&n| run(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use planaria_arch::AcceleratorConfig;
    use planaria_workload::{meets_sla, QosLevel, Scenario, TraceConfig};

    #[test]
    fn cluster_preserves_all_requests() {
        let e = PlanariaEngine::new(AcceleratorConfig::planaria());
        let trace = TraceConfig::new(Scenario::B, QosLevel::Soft, 300.0, 30, 5).generate();
        let r = run_cluster(&e, 3, &trace);
        assert_eq!(r.completions.len(), 30);
    }

    #[test]
    fn every_policy_preserves_all_requests() {
        let e = PlanariaEngine::new(AcceleratorConfig::planaria());
        let trace = TraceConfig::new(Scenario::C, QosLevel::Medium, 250.0, 40, 11).generate();
        for policy in DispatchPolicy::ALL {
            let r = run_cluster_with(&e, 4, &trace, policy);
            assert_eq!(r.completions.len(), 40, "{policy:?}");
            let ids: Vec<u64> = r.completions.iter().map(|c| c.request.id).collect();
            assert!(ids.windows(2).all(|w| w[0] < w[1]), "{policy:?} sorted");
        }
    }

    #[test]
    fn more_nodes_help_under_overload() {
        let e = PlanariaEngine::new(AcceleratorConfig::planaria());
        // Heavy overload of SSD-R requests.
        let trace = TraceConfig::new(Scenario::A, QosLevel::Soft, 120.0, 40, 5).generate();
        let one = run_cluster(&e, 1, &trace);
        let four = run_cluster(&e, 4, &trace);
        assert!(
            four.completions.iter().map(|c| c.latency()).sum::<f64>()
                < one.completions.iter().map(|c| c.latency()).sum::<f64>()
        );
    }

    #[test]
    fn min_nodes_search_is_monotone_first_true() {
        assert_eq!(min_nodes_for_sla(|n| n >= 3, 8), Some(3));
        assert_eq!(min_nodes_for_sla(|_| false, 4), None);
    }

    #[test]
    fn dispatch_policies_partition_the_trace() {
        let e = PlanariaEngine::new(AcceleratorConfig::planaria());
        let trace = TraceConfig::new(Scenario::C, QosLevel::Soft, 100.0, 45, 4).generate();
        for policy in DispatchPolicy::ALL {
            let split = dispatch(&e, 3, &trace, policy);
            assert_eq!(split.iter().map(Vec::len).sum::<usize>(), 45, "{policy:?}");
        }
        // Affinity really pins networks: every node sees a disjoint set.
        let split = dispatch(&e, 3, &trace, DispatchPolicy::DnnAffinity);
        for (i, node) in split.iter().enumerate() {
            for (j, other) in split.iter().enumerate() {
                if i == j {
                    continue;
                }
                for r in node {
                    assert!(
                        !other.iter().any(|o| o.dnn == r.dnn),
                        "network {} on two nodes",
                        r.dnn
                    );
                }
            }
        }
    }

    #[test]
    fn round_robin_balances_counts() {
        let e = PlanariaEngine::new(AcceleratorConfig::planaria());
        let trace = TraceConfig::new(Scenario::A, QosLevel::Soft, 50.0, 30, 8).generate();
        let split = dispatch(&e, 3, &trace, DispatchPolicy::RoundRobin);
        assert!(split.iter().all(|n| n.len() == 10));
    }

    #[test]
    fn open_loop_dispatch_matches_fabric_routing() {
        // The offline projection and the online fabric must route
        // identically for the open-loop policies: per-node completion
        // counts equal the offline split sizes.
        let e = PlanariaEngine::new(AcceleratorConfig::planaria());
        let trace = TraceConfig::new(Scenario::B, QosLevel::Medium, 200.0, 36, 6).generate();
        for policy in [
            DispatchPolicy::LeastWork,
            DispatchPolicy::RoundRobin,
            DispatchPolicy::DnnAffinity,
        ] {
            let split = dispatch(&e, 3, &trace, policy);
            let fabric = run_cluster_with(&e, 3, &trace, policy);
            assert_eq!(
                fabric.completions.len(),
                split.iter().map(Vec::len).sum::<usize>(),
                "{policy:?}"
            );
            // Every request completes on the node the projection picked:
            // check via per-node id sets.
            for (node, sub) in split.iter().enumerate() {
                for r in sub {
                    assert!(
                        fabric.completions.iter().any(|c| c.request.id == r.id),
                        "{policy:?}: id {} (node {node}) lost",
                        r.id
                    );
                }
            }
        }
    }

    #[test]
    fn single_node_cluster_equals_engine() {
        // Exact equality: one fabric node on the same clock origin must
        // reproduce the engine bit-for-bit — completions, energy and
        // makespan.
        let e = PlanariaEngine::new(AcceleratorConfig::planaria());
        let trace = TraceConfig::new(Scenario::B, QosLevel::Soft, 100.0, 15, 9).generate();
        let direct = e.run(&trace);
        let cluster = run_cluster(&e, 1, &trace);
        assert_eq!(direct.completions, cluster.completions);
        assert_eq!(direct.total_energy, cluster.total_energy);
        assert_eq!(direct.makespan.to_bits(), cluster.makespan.to_bits());
        assert!(meets_sla(&direct.completions) == meets_sla(&cluster.completions));
    }

    #[test]
    fn streamed_cluster_equals_materialized() {
        let e = PlanariaEngine::new(AcceleratorConfig::planaria());
        let cfg = TraceConfig::new(Scenario::C, QosLevel::Medium, 300.0, 50, 12);
        let trace = cfg.generate();
        for policy in DispatchPolicy::ALL {
            let mat = run_cluster_with(&e, 3, &trace, policy);
            let streamed = run_cluster_streamed(&e, 3, cfg.stream(), policy);
            assert_eq!(mat.completions, streamed.completions, "{policy:?}");
            assert_eq!(mat.total_energy, streamed.total_energy, "{policy:?}");
        }
    }

    #[test]
    fn recorded_cluster_matches_unrecorded_and_captures_per_node_events() {
        let e = PlanariaEngine::new(AcceleratorConfig::planaria());
        let cfg = TraceConfig::new(Scenario::B, QosLevel::Medium, 200.0, 24, 6);
        let trace = cfg.generate();
        let plain = run_cluster_with(&e, 3, &trace, DispatchPolicy::JoinShortestQueue);
        let (rec_result, stats, rec) = run_cluster_recorded(
            &e,
            3,
            trace.iter().copied(),
            DispatchPolicy::JoinShortestQueue,
            &FabricTuning::default(),
        );
        // Recording changes nothing about scheduling.
        assert_eq!(plain.completions, rec_result.completions);
        assert_eq!(plain.total_energy, rec_result.total_energy);
        assert_eq!(plain.makespan.to_bits(), rec_result.makespan.to_bits());
        assert!(stats.rounds > 0);
        // The fabric recorder saw every dispatch decision; the node
        // recorders saw every completion between them.
        assert_eq!(rec.nodes.len(), 3);
        let merged = rec.merged_report();
        assert_eq!(
            merged.counter(planaria_telemetry::Counter::DispatchDecisions),
            24
        );
        let sketch = merged
            .sketch(planaria_telemetry::Metric::LatencyCycles)
            .expect("latency sketch recorded");
        assert_eq!(sketch.count(), 24);
    }

    #[test]
    fn stats_cluster_matches_materialized_percentiles() {
        let e = PlanariaEngine::new(AcceleratorConfig::planaria());
        let trace = TraceConfig::new(Scenario::C, QosLevel::Soft, 250.0, 40, 9).generate();
        let mat = run_cluster_with(&e, 2, &trace, DispatchPolicy::LeastWork);
        let (cs, _) = run_cluster_stats(
            &e,
            2,
            trace.iter().copied(),
            DispatchPolicy::LeastWork,
            &FabricTuning::default(),
        );
        assert_eq!(cs.completed, 40);
        assert_eq!(mat.completions.len(), 40);
        assert!((cs.makespan - mat.makespan).abs() < 1e-12);
        // Sketch p99 over-reports by at most 1/32 relative to the exact
        // nearest-rank oracle on the materialized completions.
        let sketch = cs
            .metrics
            .sketch(planaria_telemetry::Metric::LatencyCycles)
            .expect("latency sketch");
        assert_eq!(sketch.count(), 40);
        let clock = SimClock::new(trace[0].arrival, e.library().config().freq_hz);
        let mut lat: Vec<Cycles> = mat
            .completions
            .iter()
            .map(|c| {
                clock
                    .cycles_from_seconds(c.finish)
                    .saturating_sub(clock.cycles_from_seconds(c.request.arrival))
            })
            .collect();
        lat.sort();
        let rank = (lat.len() * 99).div_ceil(100).clamp(1, lat.len());
        let truth = lat[rank - 1].get();
        let got = sketch.value_at_ratio(99, 100).expect("non-empty sketch");
        assert!(
            got >= truth.saturating_sub(2),
            "p99 {got} below oracle {truth}"
        );
        assert!(
            got <= truth + truth / 32 + 2,
            "p99 {got} above bound for {truth}"
        );
    }

    #[test]
    fn qos_aware_splits_tight_from_relaxed() {
        // Hard QoS budgets are tight multiples of the compiled latency,
        // so QosAware must least-load at least some requests; with a
        // huge budget everything round-robins.
        let e = PlanariaEngine::new(AcceleratorConfig::planaria());
        let trace = TraceConfig::new(Scenario::A, QosLevel::Soft, 50.0, 30, 8).generate();
        let relaxed: Vec<Request> = trace.iter().map(|r| Request { qos: 1e3, ..*r }).collect();
        let split = dispatch(&e, 3, &relaxed, DispatchPolicy::QosAware);
        // All relaxed → pure round-robin balance.
        assert!(split.iter().all(|n| n.len() == 10), "relaxed = round-robin");
    }
}
