//! Algorithm 1: spatial scheduling for Planaria (§V).
//!
//! The scheduler runs in two stages. First, `ESTIMATERESOURCES` finds the
//! minimum subarray count meeting each task's QoS slack (via configuration-
//! table lookups). Then, if the minima fit on the chip, `ALLOCATEFITTASKS`
//! distributes the spare subarrays proportionally to a
//! `priority / remaining-time` score; otherwise `ALLOCATEUNFITTASKS` ranks
//! tasks by `priority / (slack × estimate)` and packs the chip greedily,
//! leaving the rest queued.
//!
//! Since the discrete-event kernel refactor, time flows through the
//! scheduler in integer cycles: slack is signed cycles to the deadline and
//! predictions are table cycles. (The scores stay `f64` — they are
//! dimensionless ratios, and because every term scales by the same clock,
//! the ranking is identical to the old seconds-based one.)

use planaria_compiler::CompiledDnn;
use planaria_model::units::Cycles;

/// Scheduler view of one task in the queue (running or waiting).
#[derive(Debug, Clone, Copy)]
pub struct SchedTask<'a> {
    /// Task priority (1..=11).
    pub priority: u32,
    /// Remaining slack to the QoS deadline, cycles (negative when the
    /// deadline has already passed).
    pub slack: i64,
    /// Completed work fraction ∈ [0, 1].
    pub done: f64,
    /// The task's compiled configuration tables.
    pub compiled: &'a CompiledDnn,
}

impl SchedTask<'_> {
    /// Predicted remaining cycles on `subarrays` granules (the
    /// `PREDICTTIME` table lookup).
    pub fn predict_cycles(&self, subarrays: u32) -> Cycles {
        self.compiled.table(subarrays).remaining_cycles(self.done)
    }

    /// [`predict_cycles`](Self::predict_cycles) in seconds, for
    /// presentation at the simulation boundary (examples, reports).
    pub fn predict_time(&self, subarrays: u32, freq_hz: f64) -> f64 {
        self.predict_cycles(subarrays).as_f64() / freq_hz
    }

    /// `ESTIMATERESOURCES`: the minimum subarray count whose predicted
    /// remaining cycles fit the slack; the full chip when none does.
    pub fn estimate_resources(&self, total: u32) -> u32 {
        self.estimate_resources_from(1, total)
    }

    /// [`estimate_resources`](Self::estimate_resources) scanning upward
    /// from `floor` instead of 1.
    ///
    /// Passing a `floor` above the true minimum changes the answer, so the
    /// floor must be a *proven lower bound*. The engines derive one from
    /// monotonicity: for a queued task, `done` is frozen (so every
    /// `predict_cycles(s)` is unchanged) while `slack = deadline − now`
    /// only shrinks as time advances — therefore the minimal fitting `s`
    /// can only grow between scheduling events, and the previous event's
    /// estimate is an exact floor for the next. That turns the per-event
    /// estimate scan from `O(total)` table lookups into `O(1)` for the
    /// queued majority without changing a single allocation.
    pub fn estimate_resources_from(&self, floor: u32, total: u32) -> u32 {
        self.estimate_resources_with_fit(floor, total).0
    }

    /// [`estimate_resources_from`](Self::estimate_resources_from) that also
    /// returns the predicted remaining cycles *at* the returned estimate —
    /// the quantity `ALLOCATEFITTASKS` divides by. Returning it here lets
    /// the fit path reuse the scan's last table lookup instead of
    /// re-querying, and lets the engines memoize it per tenant (the
    /// [`SchedState`](crate::sched_state::SchedState) band fastpath): when
    /// a memoized `(estimate, fit)` still satisfies `fit <= slack`, the
    /// whole estimate phase is O(1) with **zero** table lookups.
    ///
    /// When no subarray count fits the slack, the estimate is `total` and
    /// the fit is `predict_cycles(total)` — exactly what the fit path
    /// would look up.
    pub fn estimate_resources_with_fit(&self, floor: u32, total: u32) -> (u32, Cycles) {
        let mut last = Cycles::ZERO;
        for s in floor.clamp(1, total)..=total {
            last = self.predict_cycles(s);
            if last.get() as i64 <= self.slack {
                return (s, last);
            }
        }
        (total, last)
    }
}

/// Minimum slack used by the unfit-path urgency score: 1 µs expressed in
/// cycles of the given clock. Past-deadline tasks rank as most urgent
/// without a division blow-up (same clamp the old seconds-based scheduler
/// applied at `1e-6 s`). At the paper's 700 MHz this is exactly the 700
/// cycles the scheduler historically hardcoded; deriving it from the
/// clock keeps the clamp meaning "one microsecond" on every geometry
/// (e.g. 595 cycles on a crossbar-derated 595 MHz chip).
pub fn min_slack_cycles(freq_hz: f64) -> i64 {
    ((freq_hz / 1e6) as i64).max(1)
}

/// `SCHEDULETASKSSPATIALLY`: returns the subarray allocation for each task,
/// aligned with the input slice (0 = stay queued). The allocations always
/// sum to at most `total`. `min_slack` is the urgency-score clamp in
/// cycles — pass [`min_slack_cycles`] of the chip's clock.
pub fn schedule_tasks_spatially(tasks: &[SchedTask<'_>], total: u32, min_slack: i64) -> Vec<u32> {
    schedule_tasks_spatially_hinted(tasks, total, &[], min_slack).0
}

/// [`schedule_tasks_spatially`] with per-task estimate floors, returning
/// `(allocations, estimates)` so the caller can seed the next call's
/// floors (see [`SchedTask::estimate_resources_from`] for when a floor is
/// sound). `floors` may be empty (all 1) or aligned with `tasks`; the
/// returned estimates are aligned with `tasks`.
///
/// This is the convenient materializing wrapper; the engines' hot loop
/// calls [`allocate_spatially_into`] directly with reusable scratch
/// buffers so steady-state events allocate nothing.
pub fn schedule_tasks_spatially_hinted(
    tasks: &[SchedTask<'_>],
    total: u32,
    floors: &[u32],
    min_slack: i64,
) -> (Vec<u32>, Vec<u32>) {
    if tasks.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let mut estimates = Vec::with_capacity(tasks.len());
    let mut fit = Vec::with_capacity(tasks.len());
    let mut priorities = Vec::with_capacity(tasks.len());
    let mut slacks = Vec::with_capacity(tasks.len());
    for (i, t) in tasks.iter().enumerate() {
        let (e, f) = t.estimate_resources_with_fit(floors.get(i).copied().unwrap_or(1), total);
        estimates.push(e);
        fit.push(f);
        priorities.push(t.priority);
        slacks.push(t.slack);
    }
    let mut alloc = Vec::new();
    let mut scratch = AllocScratch::default();
    allocate_spatially_into(
        &priorities,
        &slacks,
        &estimates,
        &fit,
        total,
        min_slack,
        &mut alloc,
        &mut scratch,
    );
    (alloc, estimates)
}

/// Reusable working memory for [`allocate_spatially_into`]. Owned by the
/// caller (the engines keep one per policy), so repeated scheduling events
/// reuse the same buffers instead of allocating fresh `Vec`s: once the
/// buffers have grown to the live-tenant high-water mark, allocation runs
/// with zero heap traffic.
#[derive(Debug, Clone, Default)]
pub struct AllocScratch {
    scores: Vec<f64>,
    fractional: Vec<(usize, f64)>,
    order: Vec<usize>,
}

/// The allocation phase of Algorithm 1 over plain columnar inputs, writing
/// into a caller-owned output buffer.
///
/// The estimate phase (`ESTIMATERESOURCES`) is the caller's: `estimates[i]`
/// is task *i*'s minimum subarray count and `fit[i]` the predicted
/// remaining cycles at that count (both from
/// [`SchedTask::estimate_resources_with_fit`], possibly memoized). Given
/// those, this function needs no table access at all — it is the pure
/// `ALLOCATEFITTASKS` / `ALLOCATEUNFITTASKS` arithmetic of §V, bit-for-bit
/// identical to the materializing wrappers above.
///
/// `alloc` is cleared and refilled aligned with the inputs; allocations
/// always sum to at most `total`. `min_slack` is the unfit-path urgency
/// clamp in cycles ([`min_slack_cycles`] of the chip's clock).
pub fn allocate_spatially_into(
    priorities: &[u32],
    slacks: &[i64],
    estimates: &[u32],
    fit: &[Cycles],
    total: u32,
    min_slack: i64,
    alloc: &mut Vec<u32>,
    scratch: &mut AllocScratch,
) {
    alloc.clear();
    if estimates.is_empty() {
        return;
    }
    let need: u32 = estimates.iter().sum();
    if need <= total {
        allocate_fit_into(priorities, estimates, fit, total, alloc, scratch);
    } else {
        allocate_unfit_into(
            priorities, slacks, estimates, total, min_slack, alloc, scratch,
        );
    }
}

/// `ALLOCATEFITTASKS`: everyone gets their minimum; the spare subarrays are
/// split proportionally to `priority / remaining-time`.
fn allocate_fit_into(
    priorities: &[u32],
    estimates: &[u32],
    fit: &[Cycles],
    total: u32,
    alloc: &mut Vec<u32>,
    scratch: &mut AllocScratch,
) {
    alloc.extend_from_slice(estimates);
    let mut spare = total - estimates.iter().sum::<u32>();
    if spare == 0 {
        return;
    }
    scratch.scores.clear();
    scratch.scores.extend(
        priorities
            .iter()
            .zip(fit)
            .map(|(&p, f)| f64::from(p) / f.as_f64().max(1.0)),
    );
    let sum: f64 = scratch.scores.iter().sum();
    // Integer proportional share; remainders go to the largest fractions.
    scratch.fractional.clear();
    for (i, score) in scratch.scores.iter().enumerate() {
        let share = score / sum * f64::from(spare);
        let whole = share.floor() as u32;
        alloc[i] += whole;
        scratch.fractional.push((i, share - share.floor()));
    }
    spare -= scratch
        .fractional
        .iter()
        .map(|&(i, _)| alloc[i] - estimates[i])
        .sum::<u32>();
    // Same stable-to-unstable translation as the unfit path: the pairs
    // are pushed in index order, so an index tiebreak reproduces the
    // stable descending-by-fraction order exactly, without the stable
    // sort's allocation (fractions are finite: `share` is a ratio of
    // finite non-NaN terms).
    scratch.fractional.sort_unstable_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    for &(i, _) in scratch.fractional.iter() {
        if spare == 0 {
            break;
        }
        alloc[i] += 1;
        spare -= 1;
    }
}

/// `ALLOCATEUNFITTASKS`: rank by `priority / (slack × estimate)` and pack
/// the chip; the last packed task may receive a partial grant, everyone
/// else waits.
///
/// The urgency scores are evaluated once into scratch and the sort
/// compares the precomputed values. The pre-overhaul code evaluated the
/// score closure inside the comparator — two fresh divisions per
/// comparison, roughly `2·n·log n` score evaluations per event where `n`
/// evaluations suffice. A saturated node takes this path on almost every
/// event (a deep backlog keeps `Σ estimates > total`), which made the
/// comparator the hottest arithmetic in the whole per-event path. The
/// comparator sees bit-identical `f64` values either way and the sort is
/// stable, so the packing order — and therefore every allocation — is
/// unchanged; [`reference::allocate_spatially_reference_into`] keeps the
/// old body alive and the `unfit_path_matches_reference_*` property test
/// pins the two together.
fn allocate_unfit_into(
    priorities: &[u32],
    slacks: &[i64],
    estimates: &[u32],
    total: u32,
    min_slack: i64,
    alloc: &mut Vec<u32>,
    scratch: &mut AllocScratch,
) {
    scratch.scores.clear();
    scratch.scores.extend((0..estimates.len()).map(|i| {
        // Tasks already past their deadline get the most urgent score.
        let slack = slacks[i].max(min_slack) as f64;
        f64::from(priorities[i]) / (slack * f64::from(estimates[i]))
    }));
    // The reference's *stable* descending sort over `0..n` is exactly a
    // sort by the total key `(score desc, index asc)` — the index
    // tiebreak encodes stability, and because that key is a *strict*
    // total order (scores are finite: priority ≥ 1, slack clamped ≥
    // `min_slack` ≥ 1, estimate ≥ 1; ties fall to the distinct indices),
    // the sorted permutation is unique no matter what order the sort
    // starts from. That licenses a warm start: `scratch.order` still
    // holds the *previous* event's sorted permutation, and urgency ranks
    // drift slowly between events (all slacks shrink by the same `dt`;
    // crossings are rare), so after a cheap fix-up for the changed tenant
    // count it is nearly sorted already. An adaptive insertion sort then
    // finishes in ~`n` comparisons on the steady state instead of the
    // ~`n·log n` branch-missing comparisons a from-scratch sort pays —
    // and this sort runs on essentially every event of a saturated node.
    //
    // The fix-up keeps the invariant "`order` is a permutation of
    // `0..n`": entries `>= n` (tenants retired since the last unfit
    // event) are dropped, missing high indices (tenants admitted since)
    // are appended. A `swap_remove` retirement relabels the moved tenant,
    // which displaces at most one entry per retirement — exactly the
    // near-sorted case insertion sort absorbs in O(displacement).
    let n = estimates.len();
    if scratch.order.len() > n {
        scratch.order.retain(|&i| i < n);
    } else {
        scratch.order.extend(scratch.order.len()..n);
    }
    let scores = &scratch.scores;
    // `a` packs before `b`: strictly greater urgency, or equal urgency
    // and earlier index (the stability tiebreak). NaN is unreachable
    // (finite scores), so `partial_cmp`'s `None` falls into the index
    // arm harmlessly.
    let before = |a: usize, b: usize| match scores[a].partial_cmp(&scores[b]) {
        Some(std::cmp::Ordering::Greater) => true,
        Some(std::cmp::Ordering::Less) => false,
        _ => a < b,
    };
    let ord = &mut scratch.order;
    for i in 1..n {
        let v = ord[i];
        let mut j = i;
        while j > 0 && before(v, ord[j - 1]) {
            ord[j] = ord[j - 1];
            j -= 1;
        }
        ord[j] = v;
    }
    alloc.resize(estimates.len(), 0);
    let mut remaining = total;
    for &i in scratch.order.iter() {
        if remaining == 0 {
            break;
        }
        let grant = estimates[i].min(remaining);
        alloc[i] = grant;
        remaining -= grant;
    }
}

/// The pre-overhaul allocation arithmetic, retained verbatim.
///
/// `planaria-sim`'s `oracle` module keeps the replaced kernel containers
/// (plain heap, `BTreeMap` index) alive so the hot-path overhaul stays
/// testable and measurable against exactly what it replaced; this module
/// is the allocator leg of the same preservation on the scheduler side.
/// The *whole* pre-overhaul reschedule body lives on as
/// `SpatialPolicy::reschedule_reference` in `planaria-core`'s engine
/// (eager estimate views, unfiltered placement sorts), selected by
/// `with_reference_hot_path`; that body calls
/// [`allocate_spatially_reference_into`] here, which carries the
/// pre-overhaul unfit allocator — scores evaluated inside the sort
/// comparator over a fresh `0..n` — while the fit path is shared by both
/// lanes (its sort swap is order-preserving, so sharing only speeds the
/// baseline up — the conservative direction for the race). The kernel
/// bench's baseline lane runs through that complete path, so
/// `BENCH_kernel.json` measures new-hot-path vs pre-PR-hot-path rather
/// than new-vs-new, and the property tests below pin the two allocator
/// implementations bit-for-bit.
pub mod reference {
    use super::{allocate_fit_into, AllocScratch, Cycles};

    /// Pre-overhaul [`allocate_spatially_into`](super::allocate_spatially_into):
    /// identical dispatch, comparator-evaluated unfit scores.
    pub fn allocate_spatially_reference_into(
        priorities: &[u32],
        slacks: &[i64],
        estimates: &[u32],
        fit: &[Cycles],
        total: u32,
        min_slack: i64,
        alloc: &mut Vec<u32>,
        scratch: &mut AllocScratch,
    ) {
        alloc.clear();
        if estimates.is_empty() {
            return;
        }
        let need: u32 = estimates.iter().sum();
        if need <= total {
            allocate_fit_into(priorities, estimates, fit, total, alloc, scratch);
        } else {
            allocate_unfit_reference_into(
                priorities, slacks, estimates, total, min_slack, alloc, scratch,
            );
        }
    }

    /// The pre-overhaul unfit body: the score closure runs inside the
    /// comparator, twice per comparison.
    fn allocate_unfit_reference_into(
        priorities: &[u32],
        slacks: &[i64],
        estimates: &[u32],
        total: u32,
        min_slack: i64,
        alloc: &mut Vec<u32>,
        scratch: &mut AllocScratch,
    ) {
        scratch.order.clear();
        scratch.order.extend(0..estimates.len());
        let score = |i: usize| {
            let slack = slacks[i].max(min_slack) as f64;
            f64::from(priorities[i]) / (slack * f64::from(estimates[i]))
        };
        scratch.order.sort_by(|&a, &b| {
            score(b)
                .partial_cmp(&score(a))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        alloc.resize(estimates.len(), 0);
        let mut remaining = total;
        for &i in scratch.order.iter() {
            if remaining == 0 {
                break;
            }
            let grant = estimates[i].min(remaining);
            alloc[i] = grant;
            remaining -= grant;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planaria_arch::AcceleratorConfig;
    use planaria_compiler::compile;
    use planaria_model::DnnId;

    /// The urgency clamp at the paper clock, used by every test below.
    const PAPER_MIN_SLACK: i64 = 700;

    fn compiled(id: DnnId) -> planaria_compiler::CompiledDnn {
        compile(&AcceleratorConfig::planaria(), &id.build())
    }

    #[test]
    fn min_slack_is_one_microsecond_of_the_clock() {
        // Exactly the historical hardcoded 700 at the paper's 700 MHz —
        // the derivation is behavior-preserving by construction.
        assert_eq!(
            min_slack_cycles(AcceleratorConfig::planaria().freq_hz),
            PAPER_MIN_SLACK
        );
        // The crossbar-derated fine-granule chip runs at 595 MHz.
        assert_eq!(
            min_slack_cycles(AcceleratorConfig::with_granularity(16).freq_hz),
            595
        );
        // Degenerate clocks still clamp above zero.
        assert_eq!(min_slack_cycles(1.0), 1);
    }

    /// Seconds → cycles at the Planaria clock, for readable test slacks.
    fn cy(seconds: f64) -> i64 {
        (seconds * AcceleratorConfig::planaria().freq_hz) as i64
    }

    #[test]
    fn estimate_is_minimal() {
        let c = compiled(DnnId::TinyYolo);
        let isolated_full = c.table(16).total_cycles().get() as i64;
        let t = SchedTask {
            priority: 5,
            slack: isolated_full * 20, // loose: smallest allocations work
            done: 0.0,
            compiled: &c,
        };
        let est_loose = t.estimate_resources(16);
        let tight = SchedTask {
            slack: isolated_full + isolated_full / 20,
            ..t
        };
        let est_tight = tight.estimate_resources(16);
        assert!(est_loose <= est_tight);
        assert!(est_loose >= 1 && est_tight <= 16);
    }

    #[test]
    fn hopeless_slack_caps_at_full_chip() {
        let c = compiled(DnnId::SsdResNet34);
        let t = SchedTask {
            priority: 5,
            slack: cy(-1.0),
            done: 0.0,
            compiled: &c,
        };
        assert_eq!(t.estimate_resources(16), 16);
    }

    #[test]
    fn single_task_gets_whole_chip() {
        let c = compiled(DnnId::ResNet50);
        let t = SchedTask {
            priority: 5,
            slack: cy(10.0),
            done: 0.0,
            compiled: &c,
        };
        let alloc = schedule_tasks_spatially(&[t], 16, PAPER_MIN_SLACK);
        assert_eq!(alloc, vec![16]);
    }

    #[test]
    fn allocations_never_exceed_chip() {
        let nets: Vec<_> = [
            DnnId::ResNet50,
            DnnId::TinyYolo,
            DnnId::MobileNetV1,
            DnnId::Gnmt,
        ]
        .iter()
        .map(|&id| compiled(id))
        .collect();
        for slack_s in [0.001, 0.01, 0.1, 1.0] {
            let tasks: Vec<SchedTask> = nets
                .iter()
                .enumerate()
                .map(|(i, c)| SchedTask {
                    priority: (i as u32 % 11) + 1,
                    slack: cy(slack_s),
                    done: 0.1 * i as f64,
                    compiled: c,
                })
                .collect();
            let alloc = schedule_tasks_spatially(&tasks, 16, PAPER_MIN_SLACK);
            assert!(
                alloc.iter().sum::<u32>() <= 16,
                "slack {slack_s}: {alloc:?}"
            );
        }
    }

    #[test]
    fn fit_path_spreads_spare_by_priority() {
        let a = compiled(DnnId::TinyYolo);
        let b = compiled(DnnId::TinyYolo);
        let mk = |priority, c| SchedTask {
            priority,
            slack: cy(10.0), // very loose: both estimate 1
            done: 0.0,
            compiled: c,
        };
        let alloc = schedule_tasks_spatially(&[mk(11, &a), mk(1, &b)], 16, PAPER_MIN_SLACK);
        assert_eq!(alloc.iter().sum::<u32>(), 16);
        assert!(
            alloc[0] > alloc[1],
            "high priority should get the larger share: {alloc:?}"
        );
    }

    #[test]
    fn unfit_path_prefers_urgent_high_priority() {
        let heavy = compiled(DnnId::SsdResNet34);
        // Three heavy tasks with slack just above the full-chip isolated
        // latency: estimates are 16 each; only the best-scored one fits.
        let iso = heavy.table(16).total_cycles().get() as i64;
        let mk = |priority, slack| SchedTask {
            priority,
            slack,
            done: 0.0,
            compiled: &heavy,
        };
        let tight = iso + iso / 50;
        let tasks = [mk(1, tight), mk(11, tight), mk(5, tight)];
        let alloc = schedule_tasks_spatially(&tasks, 16, PAPER_MIN_SLACK);
        assert_eq!(alloc[1], 16, "priority 11 should win: {alloc:?}");
        assert_eq!(alloc[0] + alloc[2], 0);
    }

    #[test]
    fn seconds_prediction_matches_cycles_at_the_clock() {
        let c = compiled(DnnId::TinyYolo);
        let t = SchedTask {
            priority: 5,
            slack: cy(1.0),
            done: 0.5,
            compiled: &c,
        };
        let freq = AcceleratorConfig::planaria().freq_hz;
        let secs = t.predict_time(8, freq);
        assert!((secs * freq - t.predict_cycles(8).as_f64()).abs() < 1e-6);
    }

    #[test]
    fn empty_queue_yields_empty_allocation() {
        assert!(schedule_tasks_spatially(&[], 16, PAPER_MIN_SLACK).is_empty());
    }

    #[test]
    fn hinted_with_unit_floors_matches_plain() {
        let nets: Vec<_> = [DnnId::ResNet50, DnnId::TinyYolo, DnnId::Gnmt]
            .iter()
            .map(|&id| compiled(id))
            .collect();
        for slack_s in [0.001, 0.01, 0.1] {
            let tasks: Vec<SchedTask> = nets
                .iter()
                .enumerate()
                .map(|(i, c)| SchedTask {
                    priority: (i as u32 % 11) + 1,
                    slack: cy(slack_s),
                    done: 0.2 * i as f64,
                    compiled: c,
                })
                .collect();
            let plain = schedule_tasks_spatially(&tasks, 16, PAPER_MIN_SLACK);
            let (hinted, estimates) =
                schedule_tasks_spatially_hinted(&tasks, 16, &[1, 1, 1], PAPER_MIN_SLACK);
            assert_eq!(plain, hinted, "slack {slack_s}");
            for (t, &e) in tasks.iter().zip(&estimates) {
                assert_eq!(e, t.estimate_resources(16), "slack {slack_s}");
            }
        }
    }

    #[test]
    fn unfit_path_matches_reference_arithmetic_over_random_queues() {
        // The hot allocator precomputes the urgency scores the reference
        // evaluates inside its comparator; the two must produce the same
        // allocation vector bit-for-bit on any queue shape — including
        // score ties (equal priority/slack/estimate triples), which the
        // stable sort must break identically.
        let mut rng = planaria_model::SplitMix64::new(0xA110C);
        for round in 0..500 {
            let n = 1 + rng.next_below(40) as usize;
            let mut priorities = Vec::with_capacity(n);
            let mut slacks = Vec::with_capacity(n);
            let mut estimates = Vec::with_capacity(n);
            let mut fit = Vec::with_capacity(n);
            for _ in 0..n {
                // Coarse buckets force frequent exact ties.
                priorities.push(1 + rng.next_below(4) as u32);
                // Spans negative (past-deadline) through positive slack.
                slacks.push(rng.next_below(8) as i64 * 1_000 - 2_000);
                estimates.push(1 + rng.next_below(4) as u32);
                fit.push(Cycles::new(rng.next_below(10_000)));
            }
            let total = 1 + rng.next_below(16) as u32;
            let mut hot = Vec::new();
            let mut old = Vec::new();
            let mut s1 = AllocScratch::default();
            let mut s2 = AllocScratch::default();
            allocate_spatially_into(
                &priorities,
                &slacks,
                &estimates,
                &fit,
                total,
                PAPER_MIN_SLACK,
                &mut hot,
                &mut s1,
            );
            reference::allocate_spatially_reference_into(
                &priorities,
                &slacks,
                &estimates,
                &fit,
                total,
                PAPER_MIN_SLACK,
                &mut old,
                &mut s2,
            );
            assert_eq!(hot, old, "round {round}: n={n} total={total}");
        }
    }

    #[test]
    fn earlier_estimate_is_a_sound_floor_under_shrinking_slack() {
        // The engine's memoization contract: with `done` frozen and slack
        // only shrinking, an earlier estimate used as the floor for a
        // later (tighter-slack) scan returns the same estimate as a full
        // scan from 1.
        let c = compiled(DnnId::ResNet50);
        let iso = c.table(16).total_cycles().get() as i64;
        let mut prev_floor = 1u32;
        for k in (1..=24).rev() {
            let t = SchedTask {
                priority: 5,
                slack: iso * i64::from(k) / 8, // monotonically shrinking
                done: 0.3,
                compiled: &c,
            };
            let full = t.estimate_resources(16);
            let hinted = t.estimate_resources_from(prev_floor, 16);
            assert_eq!(full, hinted, "k={k} floor={prev_floor}");
            assert!(hinted >= prev_floor);
            prev_floor = hinted;
        }
    }
}
