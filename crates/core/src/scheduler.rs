//! Algorithm 1: spatial scheduling for Planaria (§V).
//!
//! The scheduler runs in two stages. First, `ESTIMATERESOURCES` finds the
//! minimum subarray count meeting each task's QoS slack (via configuration-
//! table lookups). Then, if the minima fit on the chip, `ALLOCATEFITTASKS`
//! distributes the spare subarrays proportionally to a
//! `priority / remaining-time` score; otherwise `ALLOCATEUNFITTASKS` ranks
//! tasks by `priority / (slack × estimate)` and packs the chip greedily,
//! leaving the rest queued.

use planaria_compiler::CompiledDnn;

/// Scheduler view of one task in the queue (running or waiting).
#[derive(Debug, Clone, Copy)]
pub struct SchedTask<'a> {
    /// Task priority (1..=11).
    pub priority: u32,
    /// Remaining slack to the QoS deadline, seconds (may be negative when
    /// the deadline has already passed).
    pub slack: f64,
    /// Completed work fraction ∈ [0, 1].
    pub done: f64,
    /// The task's compiled configuration tables.
    pub compiled: &'a CompiledDnn,
}

impl SchedTask<'_> {
    /// Predicted remaining time on `subarrays` granules, seconds
    /// (the `PREDICTTIME` table lookup).
    pub fn predict_time(&self, subarrays: u32, freq_hz: f64) -> f64 {
        self.compiled
            .table(subarrays)
            .remaining_cycles(self.done)
            .as_f64()
            / freq_hz
    }

    /// `ESTIMATERESOURCES`: the minimum subarray count whose predicted
    /// remaining time fits the slack; the full chip when none does.
    pub fn estimate_resources(&self, total: u32, freq_hz: f64) -> u32 {
        for s in 1..=total {
            if self.predict_time(s, freq_hz) <= self.slack {
                return s;
            }
        }
        total
    }
}

/// `SCHEDULETASKSSPATIALLY`: returns the subarray allocation for each task,
/// aligned with the input slice (0 = stay queued). The allocations always
/// sum to at most `total`.
pub fn schedule_tasks_spatially(tasks: &[SchedTask<'_>], total: u32, freq_hz: f64) -> Vec<u32> {
    if tasks.is_empty() {
        return Vec::new();
    }
    let estimates: Vec<u32> = tasks
        .iter()
        .map(|t| t.estimate_resources(total, freq_hz))
        .collect();
    let need: u32 = estimates.iter().sum();
    if need <= total {
        allocate_fit_tasks(tasks, &estimates, total, freq_hz)
    } else {
        allocate_unfit_tasks(tasks, &estimates, total)
    }
}

/// `ALLOCATEFITTASKS`: everyone gets their minimum; the spare subarrays are
/// split proportionally to `priority / remaining-time`.
fn allocate_fit_tasks(
    tasks: &[SchedTask<'_>],
    estimates: &[u32],
    total: u32,
    freq_hz: f64,
) -> Vec<u32> {
    let mut alloc = estimates.to_vec();
    let mut spare = total - estimates.iter().sum::<u32>();
    if spare == 0 {
        return alloc;
    }
    let scores: Vec<f64> = tasks
        .iter()
        .zip(estimates)
        .map(|(t, &e)| f64::from(t.priority) / t.predict_time(e, freq_hz).max(1e-9))
        .collect();
    let sum: f64 = scores.iter().sum();
    // Integer proportional share; remainders go to the largest fractions.
    let mut fractional: Vec<(usize, f64)> = Vec::with_capacity(tasks.len());
    for (i, score) in scores.iter().enumerate() {
        let share = score / sum * f64::from(spare);
        let whole = share.floor() as u32;
        alloc[i] += whole;
        fractional.push((i, share - share.floor()));
    }
    spare -= fractional
        .iter()
        .map(|&(i, _)| alloc[i] - estimates[i])
        .sum::<u32>();
    fractional.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    for (i, _) in fractional {
        if spare == 0 {
            break;
        }
        alloc[i] += 1;
        spare -= 1;
    }
    alloc
}

/// `ALLOCATEUNFITTASKS`: rank by `priority / (slack × estimate)` and pack
/// the chip; the last packed task may receive a partial grant, everyone
/// else waits.
fn allocate_unfit_tasks(tasks: &[SchedTask<'_>], estimates: &[u32], total: u32) -> Vec<u32> {
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    let score = |i: usize| {
        // Tasks already past their deadline get the most urgent score.
        let slack = tasks[i].slack.max(1e-6);
        f64::from(tasks[i].priority) / (slack * f64::from(estimates[i]))
    };
    order.sort_by(|&a, &b| {
        score(b)
            .partial_cmp(&score(a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut alloc = vec![0u32; tasks.len()];
    let mut remaining = total;
    for i in order {
        if remaining == 0 {
            break;
        }
        let grant = estimates[i].min(remaining);
        alloc[i] = grant;
        remaining -= grant;
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;
    use planaria_arch::AcceleratorConfig;
    use planaria_compiler::compile;
    use planaria_model::DnnId;

    fn freq() -> f64 {
        AcceleratorConfig::planaria().freq_hz
    }

    fn compiled(id: DnnId) -> planaria_compiler::CompiledDnn {
        compile(&AcceleratorConfig::planaria(), &id.build())
    }

    #[test]
    fn estimate_is_minimal() {
        let c = compiled(DnnId::TinyYolo);
        let isolated_full = c.table(16).total_cycles().as_f64() / freq();
        let t = SchedTask {
            priority: 5,
            slack: isolated_full * 20.0, // loose: smallest allocations work
            done: 0.0,
            compiled: &c,
        };
        let est_loose = t.estimate_resources(16, freq());
        let tight = SchedTask {
            slack: isolated_full * 1.05,
            ..t
        };
        let est_tight = tight.estimate_resources(16, freq());
        assert!(est_loose <= est_tight);
        assert!(est_loose >= 1 && est_tight <= 16);
    }

    #[test]
    fn hopeless_slack_caps_at_full_chip() {
        let c = compiled(DnnId::SsdResNet34);
        let t = SchedTask {
            priority: 5,
            slack: -1.0,
            done: 0.0,
            compiled: &c,
        };
        assert_eq!(t.estimate_resources(16, freq()), 16);
    }

    #[test]
    fn single_task_gets_whole_chip() {
        let c = compiled(DnnId::ResNet50);
        let t = SchedTask {
            priority: 5,
            slack: 10.0,
            done: 0.0,
            compiled: &c,
        };
        let alloc = schedule_tasks_spatially(&[t], 16, freq());
        assert_eq!(alloc, vec![16]);
    }

    #[test]
    fn allocations_never_exceed_chip() {
        let nets: Vec<_> = [
            DnnId::ResNet50,
            DnnId::TinyYolo,
            DnnId::MobileNetV1,
            DnnId::Gnmt,
        ]
        .iter()
        .map(|&id| compiled(id))
        .collect();
        for slack in [0.001, 0.01, 0.1, 1.0] {
            let tasks: Vec<SchedTask> = nets
                .iter()
                .enumerate()
                .map(|(i, c)| SchedTask {
                    priority: (i as u32 % 11) + 1,
                    slack,
                    done: 0.1 * i as f64,
                    compiled: c,
                })
                .collect();
            let alloc = schedule_tasks_spatially(&tasks, 16, freq());
            assert!(alloc.iter().sum::<u32>() <= 16, "slack {slack}: {alloc:?}");
        }
    }

    #[test]
    fn fit_path_spreads_spare_by_priority() {
        let a = compiled(DnnId::TinyYolo);
        let b = compiled(DnnId::TinyYolo);
        let mk = |priority, c| SchedTask {
            priority,
            slack: 10.0, // very loose: both estimate 1
            done: 0.0,
            compiled: c,
        };
        let alloc = schedule_tasks_spatially(&[mk(11, &a), mk(1, &b)], 16, freq());
        assert_eq!(alloc.iter().sum::<u32>(), 16);
        assert!(
            alloc[0] > alloc[1],
            "high priority should get the larger share: {alloc:?}"
        );
    }

    #[test]
    fn unfit_path_prefers_urgent_high_priority() {
        let heavy = compiled(DnnId::SsdResNet34);
        // Three heavy tasks with slack just above the full-chip isolated
        // latency: estimates are 16 each; only the best-scored one fits.
        let iso = heavy.table(16).total_cycles().as_f64() / freq();
        let mk = |priority, slack| SchedTask {
            priority,
            slack,
            done: 0.0,
            compiled: &heavy,
        };
        let tight = iso * 1.02;
        let tasks = [mk(1, tight), mk(11, tight), mk(5, tight)];
        let alloc = schedule_tasks_spatially(&tasks, 16, freq());
        assert_eq!(alloc[1], 16, "priority 11 should win: {alloc:?}");
        assert_eq!(alloc[0] + alloc[2], 0);
    }

    #[test]
    fn empty_queue_yields_empty_allocation() {
        assert!(schedule_tasks_spatially(&[], 16, freq()).is_empty());
    }
}
