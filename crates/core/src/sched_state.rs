//! Persistent per-tenant scheduler state: the id-keyed dirty-set floor
//! memoization behind incremental Algorithm 1.
//!
//! Every scheduling event re-runs `ESTIMATERESOURCES` over all live
//! tenants. The scan is monotone — with a tenant's work counters frozen
//! (`done`/`total` unchanged) and slack only shrinking, the minimal
//! fitting subarray count can only grow — so the previous event's result
//! is a *proven floor* for the next (see
//! [`SchedTask::estimate_resources_from`]). The engine used to memoize
//! those floors positionally, aligned with `sim.tenants`; any
//! `swap_remove` retirement reordered the list and silently degraded the
//! moved tenants back to floor 1 (correct, but a full O(total) rescan per
//! victim per event). This module keys the memo by **request id** instead,
//! so floors survive arbitrary reordering, and extends each entry with the
//! predicted cycles *at* the floor (`fit`), enabling a band fastpath:
//!
//! * entry clean (`done`/`total` unchanged) and `fit <= slack` — the
//!   memoized `(floor, fit)` **is** the answer: floor still fits, and
//!   minimality is inherited from the wider earlier slack. Zero table
//!   lookups.
//! * entry clean but `fit > slack` — scan upward from `floor` (the sound
//!   lower bound).
//! * entry dirty (the tenant progressed, switched tables, or is new) —
//!   scan from 1, exactly like a fresh rescan.
//!
//! All three cases return the same estimate a full rescan would (the
//! soundness argument is in DESIGN.md §5f and pinned by the
//! `incremental_equivalence` property test), so the incremental scheduler
//! is result-exact, not approximate.
//!
//! # Storage
//!
//! Request ids are assigned monotonically, so the id-keyed map is stored
//! as a dense ring window `[base, base + window.len())` of `Option`
//! slots: `seed` and `record` are O(1) array probes — critical, because
//! they run once per tenant per scheduling event, and a tree lookup
//! there costs as much as the short table scan it memoizes away.
//! Resident size is O(live id span): `prune` retires dead entries and
//! advances `base` to the oldest live id once the dead outnumber the
//! live by a fixed slack, so single retirements cost nothing and the
//! sweep is amortized. Lookups below `base` (long-retired ids) simply
//! miss, which is always sound — a miss means a fresh scan from 1.
//!
//! [`SchedTask::estimate_resources_from`]: crate::scheduler::SchedTask::estimate_resources_from

use planaria_model::units::Cycles;
use std::collections::VecDeque;

/// One memoized `ESTIMATERESOURCES` result for one request id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloorEntry {
    /// The estimate returned at the last event the entry was refreshed.
    pub floor: u32,
    /// `work_done` observed then (clean only while unchanged).
    pub done: Cycles,
    /// `work_total` observed then (clean only while unchanged).
    pub total: Cycles,
    /// `predict_cycles(floor)` then — reusable verbatim while clean.
    pub fit: Cycles,
}

/// How to seed a tenant's `ESTIMATERESOURCES` scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Seed {
    /// Band fastpath: the memoized estimate is exact as-is; no scan, no
    /// table lookups. Carries `(floor, fit)`.
    Exact(u32, Cycles),
    /// Scan upward from this proven floor (1 when no clean memo exists).
    Floor(u32),
}

/// Entries are pruned once they outnumber live tenants by this much; the
/// slack amortizes the O(entries) sweep over many retirements.
const PRUNE_SLACK: usize = 64;

/// The persistent id-keyed floor memo (one per [`SpatialPolicy`] run).
///
/// Stored as a dense ring window over the monotone id space (see the
/// module docs): slot `i` of `window` holds the entry for request id
/// `base + i`.
///
/// [`SpatialPolicy`]: crate::engine::PlanariaEngine
#[derive(Debug, Clone, Default)]
pub struct SchedState {
    /// Request id of `window[0]`.
    base: u64,
    /// One slot per id in `[base, base + window.len())`; `None` = absent.
    window: VecDeque<Option<FloorEntry>>,
    /// Number of `Some` slots (live + not-yet-pruned retired entries).
    occupied: usize,
}

impl SchedState {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of memoized entries (live + not-yet-pruned retired).
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// The memoized entry for a request id, if any (test/diagnostic hook).
    pub fn entry(&self, id: u64) -> Option<&FloorEntry> {
        let idx = usize::try_from(id.checked_sub(self.base)?).ok()?;
        self.window.get(idx)?.as_ref()
    }

    /// Classifies tenant `id` against its memo: [`Seed::Exact`] when the
    /// entry is clean and its fit still meets `slack`, [`Seed::Floor`]
    /// with the proven floor when clean but tight, and `Floor(1)` when
    /// dirty or absent. One O(1) window probe.
    pub fn seed(&self, id: u64, done: Cycles, total: Cycles, slack: i64) -> Seed {
        match self.entry(id) {
            Some(e) if e.done == done && e.total == total => {
                if e.fit.get() as i64 <= slack {
                    Seed::Exact(e.floor, e.fit)
                } else {
                    Seed::Floor(e.floor)
                }
            }
            _ => Seed::Floor(1),
        }
    }

    /// Refreshes the memo for `id` after this event's estimate. Existing
    /// slots are overwritten in place; a new id extends the window by its
    /// distance past the current end (amortized O(1) under monotone id
    /// admission). Ids older than the window base are long retired and
    /// dropped on the floor — a later `seed` for them misses, which is
    /// sound (miss = fresh scan from 1).
    pub fn record(&mut self, id: u64, floor: u32, done: Cycles, total: Cycles, fit: Cycles) {
        let Some(off) = id.checked_sub(self.base) else {
            return;
        };
        let Ok(idx) = usize::try_from(off) else {
            return;
        };
        while self.window.len() <= idx {
            self.window.push_back(None);
        }
        let slot = &mut self.window[idx];
        if slot.is_none() {
            self.occupied += 1;
        }
        *slot = Some(FloorEntry {
            floor,
            done,
            total,
            fit,
        });
    }

    /// Drops entries for retired requests once they outnumber the live set
    /// by [`PRUNE_SLACK`] — amortized cleanup so single retirements cost
    /// nothing. Dead interior slots become holes; the window then shrinks
    /// from both ends, advancing `base` to the oldest live id. `is_live`
    /// answers whether a request id is still resident.
    pub fn prune<F: Fn(u64) -> bool>(&mut self, live: usize, is_live: F) {
        if self.occupied <= live + PRUNE_SLACK {
            return;
        }
        for (i, slot) in self.window.iter_mut().enumerate() {
            if slot.is_some() && !is_live(self.base + i as u64) {
                *slot = None;
                self.occupied -= 1;
            }
        }
        while matches!(self.window.front(), Some(None)) {
            self.window.pop_front();
            self.base += 1;
        }
        while matches!(self.window.back(), Some(None)) {
            self.window.pop_back();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cy(v: u64) -> Cycles {
        Cycles::new(v)
    }

    #[test]
    fn seed_without_memo_scans_from_one() {
        let s = SchedState::new();
        assert_eq!(s.seed(7, cy(0), cy(100), 50), Seed::Floor(1));
    }

    #[test]
    fn clean_entry_with_fitting_slack_is_exact() {
        let mut s = SchedState::new();
        s.record(7, 4, cy(10), cy(100), cy(40));
        assert_eq!(s.seed(7, cy(10), cy(100), 40), Seed::Exact(4, cy(40)));
        assert_eq!(s.seed(7, cy(10), cy(100), 1000), Seed::Exact(4, cy(40)));
    }

    #[test]
    fn clean_entry_with_tight_slack_degrades_to_floor() {
        let mut s = SchedState::new();
        s.record(7, 4, cy(10), cy(100), cy(40));
        assert_eq!(s.seed(7, cy(10), cy(100), 39), Seed::Floor(4));
    }

    #[test]
    fn dirty_work_counters_invalidate() {
        let mut s = SchedState::new();
        s.record(7, 4, cy(10), cy(100), cy(40));
        // Progress dirties the entry ...
        assert_eq!(s.seed(7, cy(20), cy(100), 1000), Seed::Floor(1));
        // ... and so does a table switch (total changed).
        assert_eq!(s.seed(7, cy(10), cy(90), 1000), Seed::Floor(1));
    }

    #[test]
    fn floors_survive_swap_remove_reorder() {
        // Regression for the position-based `HintEntry` hazard: retiring a
        // tenant `swap_remove`s the live list, moving the last tenant into
        // the vacated slot. The positional memo then mismatched ids and
        // silently reset the moved tenant's floor to 1. Id-keyed entries
        // are order-independent: after tenant 0 retires, tenants 1 and 2
        // keep their exact floors no matter where they now sit.
        let mut s = SchedState::new();
        s.record(0, 2, cy(5), cy(50), cy(30));
        s.record(1, 6, cy(0), cy(80), cy(70));
        s.record(2, 3, cy(9), cy(40), cy(20));
        // Tenant 0 completes; 2 is swapped into its position. Lookups are
        // by id, so position never enters the contract.
        assert_eq!(s.seed(2, cy(9), cy(40), 25), Seed::Exact(3, cy(20)));
        assert_eq!(s.seed(1, cy(0), cy(80), 70), Seed::Exact(6, cy(70)));
        // The retired id is eventually pruned; survivors stay.
        for id in 100..200 {
            s.record(id, 1, cy(0), cy(1), cy(1));
        }
        let live = [1u64, 2];
        s.prune(2, |id| live.contains(&id));
        assert_eq!(s.len(), 2);
        assert_eq!(s.seed(1, cy(0), cy(80), 70), Seed::Exact(6, cy(70)));
        assert_eq!(s.seed(0, cy(5), cy(50), 1000), Seed::Floor(1));
    }

    #[test]
    fn prune_is_amortized() {
        let mut s = SchedState::new();
        for id in 0..10 {
            s.record(id, 1, cy(0), cy(1), cy(1));
        }
        // Below the slack: nothing dropped even with zero live tenants.
        s.prune(0, |_| false);
        assert_eq!(s.len(), 10);
        // Past the slack: retired entries go.
        for id in 10..80 {
            s.record(id, 1, cy(0), cy(1), cy(1));
        }
        s.prune(4, |id| id < 4);
        assert_eq!(s.len(), 4);
    }
}
