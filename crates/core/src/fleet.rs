//! Heterogeneous-geometry fleets: per-node chip shapes behind one
//! online dispatcher.
//!
//! A [`GeoFleet`] is the big.LITTLE deployment the geometry sweep
//! explores — e.g. two coarse-granule throughput chips plus two
//! fine-granule latency chips, all on one clock. Construction validates
//! every node geometry and the shared-clock invariant up front
//! ([`planaria_arch::validate_fleet`]), compiles each distinct geometry
//! exactly once (the [`CompiledLibrary::shared_for`] cache), and the
//! dispatcher reads per-node capacity and per-node work estimates
//! instead of assuming uniform chips.

use crate::cluster::{ClusterDispatcher, ClusterStats, DispatchPolicy};
use crate::engine::PlanariaEngine;
use planaria_arch::{AcceleratorConfig, GeometryError};
use planaria_sim::{run_fabric, run_fabric_summary, FabricStats, FabricTuning};
use planaria_telemetry::StatsCollector;
use planaria_workload::{Request, SimResult};

/// A fleet of Planaria nodes with per-node chip geometries.
#[derive(Debug, Clone)]
pub struct GeoFleet {
    engines: Vec<PlanariaEngine>,
}

impl GeoFleet {
    /// Builds a fleet with one node per configuration, validating each
    /// geometry and the fleet's shared-clock invariant before anything
    /// compiles. Identical configurations share one compiled library.
    ///
    /// # Errors
    ///
    /// Returns the first [`GeometryError`] a node geometry violates, or
    /// [`GeometryError::MixedClockFrequency`] when clocks disagree.
    ///
    /// # Panics
    ///
    /// Panics if `cfgs` is empty.
    pub fn new(cfgs: &[AcceleratorConfig]) -> Result<Self, GeometryError> {
        assert!(!cfgs.is_empty(), "fleet needs at least one node");
        planaria_arch::validate_fleet(cfgs)?;
        let engines = cfgs.iter().map(|cfg| PlanariaEngine::new(*cfg)).collect();
        Ok(Self { engines })
    }

    /// Number of nodes in the fleet.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// Whether the fleet has no nodes (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// The per-node engines, in node order.
    pub fn engines(&self) -> &[PlanariaEngine] {
        &self.engines
    }

    /// The per-node configurations, in node order.
    pub fn configs(&self) -> Vec<AcceleratorConfig> {
        self.engines.iter().map(|e| *e.library().config()).collect()
    }

    /// Total MAC units across the fleet (the equal-budget yardstick of
    /// the geometry sweep's fleet comparisons).
    pub fn total_pes(&self) -> u64 {
        self.engines
            .iter()
            .map(|e| e.library().config().total_pes())
            .sum()
    }

    /// A dispatcher whose work estimates come from each node's own
    /// compiled tables.
    fn dispatcher(&self, policy: DispatchPolicy) -> ClusterDispatcher {
        let libraries: Vec<_> = self.engines.iter().map(PlanariaEngine::library).collect();
        ClusterDispatcher::heterogeneous(&libraries, policy)
    }

    /// Runs a request stream through the fleet, materializing every
    /// completion. Byte-deterministic at any `PLANARIA_JOBS`.
    ///
    /// # Panics
    ///
    /// Panics if the source yields arrivals out of order.
    pub fn run<I: IntoIterator<Item = Request>>(
        &self,
        requests: I,
        policy: DispatchPolicy,
        tuning: &FabricTuning,
    ) -> (SimResult, FabricStats) {
        let cfgs = self.configs();
        let policies: Vec<_> = self
            .engines
            .iter()
            .map(PlanariaEngine::spatial_policy)
            .collect();
        let mut d = self.dispatcher(policy);
        run_fabric(&cfgs, policies, requests, &mut d, tuning)
    }

    /// The flat-memory fleet run: identical scheduling to
    /// [`run`](Self::run), but completions are never materialized —
    /// counts, energy and percentile sketches come out of O(buckets)
    /// collectors, so million-request sweeps stay O(live tenants)
    /// resident.
    ///
    /// # Panics
    ///
    /// Panics if the source yields arrivals out of order.
    pub fn run_stats<I: IntoIterator<Item = Request>>(
        &self,
        requests: I,
        policy: DispatchPolicy,
        tuning: &FabricTuning,
    ) -> (ClusterStats, FabricStats) {
        let cfgs = self.configs();
        let policies: Vec<_> = self
            .engines
            .iter()
            .map(PlanariaEngine::spatial_policy)
            .collect();
        let mut d = self.dispatcher(policy);
        let mut fabric = StatsCollector::new();
        let sinks: Vec<StatsCollector> =
            self.engines.iter().map(|_| StatsCollector::new()).collect();
        let (summary, stats, sinks) = run_fabric_summary(
            &cfgs,
            policies,
            requests,
            &mut d,
            tuning,
            &mut fabric,
            sinks,
        );
        let mut metrics = fabric.report();
        for sink in &sinks {
            metrics.merge(&sink.report());
        }
        (
            ClusterStats {
                completed: summary.completed,
                total_energy: summary.total_energy,
                makespan: summary.makespan,
                metrics,
            },
            stats,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planaria_arch::GeometryError;
    use planaria_workload::{QosLevel, Scenario, TraceConfig};

    fn mixed_fleet() -> GeoFleet {
        GeoFleet::new(&[
            AcceleratorConfig::throughput_tuned(),
            AcceleratorConfig::planaria(),
            AcceleratorConfig::latency_tuned(),
        ])
        .expect("valid fleet")
    }

    #[test]
    fn construction_validates_geometry_and_clock() {
        let mut bad = AcceleratorConfig::planaria();
        bad.subarray_dim = 48;
        assert!(matches!(
            GeoFleet::new(&[AcceleratorConfig::planaria(), bad]),
            Err(GeometryError::NonDivisorDim { dim: 48, .. })
        ));
        let mut fast = AcceleratorConfig::planaria();
        fast.freq_hz *= 2.0;
        assert!(matches!(
            GeoFleet::new(&[AcceleratorConfig::planaria(), fast]),
            Err(GeometryError::MixedClockFrequency { node: 1, .. })
        ));
    }

    #[test]
    fn equal_pe_budget_across_shapes() {
        let fleet = mixed_fleet();
        assert_eq!(fleet.len(), 3);
        assert_eq!(fleet.total_pes(), 3 * 16_384);
    }

    #[test]
    fn heterogeneous_fleet_completes_under_every_policy() {
        let fleet = mixed_fleet();
        let trace = TraceConfig::new(Scenario::C, QosLevel::Medium, 250.0, 30, 7).generate();
        for policy in DispatchPolicy::ALL {
            let (r, stats) = fleet.run(trace.iter().copied(), policy, &FabricTuning::default());
            assert_eq!(r.completions.len(), 30, "{policy:?}");
            assert!(stats.events > 0, "{policy:?}");
        }
    }

    #[test]
    fn stats_path_matches_materialized() {
        let fleet = mixed_fleet();
        let trace = TraceConfig::new(Scenario::B, QosLevel::Medium, 200.0, 24, 5).generate();
        let (mat, _) = fleet.run(
            trace.iter().copied(),
            DispatchPolicy::GeometryAware,
            &FabricTuning::default(),
        );
        let (cs, _) = fleet.run_stats(
            trace.iter().copied(),
            DispatchPolicy::GeometryAware,
            &FabricTuning::default(),
        );
        assert_eq!(cs.completed as usize, mat.completions.len());
        assert_eq!(cs.total_energy, mat.total_energy);
        assert_eq!(cs.makespan.to_bits(), mat.makespan.to_bits());
    }

    #[test]
    fn single_node_fleet_equals_engine() {
        let fleet = GeoFleet::new(&[AcceleratorConfig::latency_tuned()]).expect("valid");
        let trace = TraceConfig::new(Scenario::B, QosLevel::Soft, 100.0, 15, 9).generate();
        let direct = PlanariaEngine::new(AcceleratorConfig::latency_tuned()).run(&trace);
        let (fleet_r, _) = fleet.run(
            trace.iter().copied(),
            DispatchPolicy::LeastWork,
            &FabricTuning::default(),
        );
        assert_eq!(direct.completions, fleet_r.completions);
        assert_eq!(direct.total_energy, fleet_r.total_energy);
        assert_eq!(direct.makespan.to_bits(), fleet_r.makespan.to_bits());
    }
}
