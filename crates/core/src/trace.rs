//! Engine telemetry: scheduling-event traces and occupancy statistics.
//!
//! [`PlanariaEngine::run_traced`](crate::PlanariaEngine::run_traced)
//! records every arrival, allocation change, and completion, enabling
//! post-hoc analysis of the scheduler's behaviour (reconfiguration counts,
//! chip occupancy over time, per-tenant allocation histories) and a text
//! timeline for quick inspection.

use planaria_model::DnnId;
use std::fmt::Write as _;

/// One scheduling event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Simulation time, seconds.
    pub time: f64,
    /// What happened.
    pub kind: EventKind,
}

/// Event payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A request entered the queue.
    Arrival {
        /// Request id.
        request: u64,
        /// Its network.
        dnn: DnnId,
    },
    /// The scheduler changed a tenant's allocation (0 = queued).
    Allocation {
        /// Request id.
        request: u64,
        /// Previous subarray count.
        from: u32,
        /// New subarray count.
        to: u32,
    },
    /// A request finished.
    Completion {
        /// Request id.
        request: u64,
        /// End-to-end latency, seconds.
        latency: f64,
    },
}

/// The recorded event stream of one simulation.
#[derive(Debug, Clone, Default)]
pub struct EngineTrace {
    events: Vec<TraceEvent>,
    total_subarrays: u32,
}

impl EngineTrace {
    /// Creates an empty trace for a chip of `total_subarrays` granules.
    pub fn new(total_subarrays: u32) -> Self {
        Self {
            events: Vec::new(),
            total_subarrays,
        }
    }

    /// Records an event (engine-internal).
    pub(crate) fn push(&mut self, time: f64, kind: EventKind) {
        self.events.push(TraceEvent { time, kind });
    }

    /// All events in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of allocation changes that resized or preempted a *running*
    /// tenant (i.e. actual reconfigurations, `from > 0`).
    pub fn reconfigurations(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Allocation { from, to, .. } if from > 0 && from != to))
            .count()
    }

    /// Time-weighted mean chip occupancy (allocated subarrays / total) over
    /// the span of the trace.
    pub fn mean_occupancy(&self) -> f64 {
        let mut alloc: std::collections::BTreeMap<u64, u32> = std::collections::BTreeMap::new();
        let mut last_t: Option<f64> = None;
        let mut acc = 0.0;
        let mut span = 0.0;
        for e in &self.events {
            if let Some(prev) = last_t {
                let dt = (e.time - prev).max(0.0);
                let used: u32 = alloc.values().sum();
                acc += dt * f64::from(used) / f64::from(self.total_subarrays.max(1));
                span += dt;
            }
            last_t = Some(e.time);
            match e.kind {
                EventKind::Allocation { request, to, .. } => {
                    alloc.insert(request, to);
                }
                EventKind::Completion { request, .. } => {
                    alloc.remove(&request);
                }
                EventKind::Arrival { .. } => {}
            }
        }
        if span > 0.0 {
            acc / span
        } else {
            0.0
        }
    }

    /// Renders a coarse text timeline of chip occupancy: `buckets` columns,
    /// each showing the occupancy decile (0-9) at that moment.
    pub fn render_occupancy(&self, buckets: usize) -> String {
        if self.events.is_empty() || buckets == 0 {
            return String::from("(empty trace)");
        }
        // lint: the is_empty() guard above ensures first/last exist
        let t0 = self.events.first().unwrap().time;
        // lint: the is_empty() guard above ensures first/last exist
        let t1 = self.events.last().unwrap().time;
        let span = (t1 - t0).max(1e-12);
        let mut samples = vec![0u32; buckets];
        let mut alloc: std::collections::BTreeMap<u64, u32> = std::collections::BTreeMap::new();
        let mut ei = 0;
        for (b, sample) in samples.iter_mut().enumerate() {
            let t = t0 + span * (b as f64 + 0.5) / buckets as f64;
            while ei < self.events.len() && self.events[ei].time <= t {
                match self.events[ei].kind {
                    EventKind::Allocation { request, to, .. } => {
                        alloc.insert(request, to);
                    }
                    EventKind::Completion { request, .. } => {
                        alloc.remove(&request);
                    }
                    EventKind::Arrival { .. } => {}
                }
                ei += 1;
            }
            *sample = alloc.values().sum();
        }
        let mut out = String::new();
        let _ = write!(out, "occupancy [{t0:.4}s..{t1:.4}s] ");
        for s in samples {
            let decile = (u64::from(s) * 9 / u64::from(self.total_subarrays.max(1))).min(9);
            let _ = write!(out, "{decile}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_trace() -> EngineTrace {
        let mut t = EngineTrace::new(16);
        t.push(
            0.0,
            EventKind::Arrival {
                request: 0,
                dnn: DnnId::ResNet50,
            },
        );
        t.push(
            0.0,
            EventKind::Allocation {
                request: 0,
                from: 0,
                to: 16,
            },
        );
        t.push(
            1.0,
            EventKind::Arrival {
                request: 1,
                dnn: DnnId::Gnmt,
            },
        );
        t.push(
            1.0,
            EventKind::Allocation {
                request: 0,
                from: 16,
                to: 8,
            },
        );
        t.push(
            1.0,
            EventKind::Allocation {
                request: 1,
                from: 0,
                to: 8,
            },
        );
        t.push(
            2.0,
            EventKind::Completion {
                request: 0,
                latency: 2.0,
            },
        );
        t.push(
            3.0,
            EventKind::Completion {
                request: 1,
                latency: 2.0,
            },
        );
        t
    }

    #[test]
    fn reconfigurations_count_running_resizes_only() {
        // Only request 0's 16 -> 8 resize is a reconfiguration; initial
        // grants from 0 are fresh starts.
        assert_eq!(demo_trace().reconfigurations(), 1);
    }

    #[test]
    fn occupancy_accounts_time_weighted() {
        // [0,1): 16/16; [1,2): 16/16 (8+8); [2,3): 8/16 → mean = 7/8.
        let occ = demo_trace().mean_occupancy();
        assert!((occ - (1.0 + 1.0 + 0.5) / 3.0).abs() < 1e-9, "got {occ}");
    }

    #[test]
    fn timeline_renders_with_requested_width() {
        let s = demo_trace().render_occupancy(10);
        assert!(s.contains("occupancy"));
        let digits: String = s.chars().rev().take(10).collect();
        assert!(digits.chars().all(|c| c.is_ascii_digit()));
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        assert_eq!(EngineTrace::new(16).render_occupancy(8), "(empty trace)");
        assert_eq!(EngineTrace::new(16).mean_occupancy(), 0.0);
    }
}
