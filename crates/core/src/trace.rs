//! Engine telemetry: scheduling-event traces and occupancy statistics.
//!
//! [`PlanariaEngine::run_traced`](crate::PlanariaEngine::run_traced)
//! records every arrival, allocation change, and completion, enabling
//! post-hoc analysis of the scheduler's behaviour (reconfiguration counts,
//! chip occupancy over time, per-tenant allocation histories) and a text
//! timeline for quick inspection.
//!
//! Since the telemetry refactor, [`EngineTrace`] is a thin view over a
//! [`planaria_telemetry::RecordingCollector`]: it implements
//! [`Collector`], forwards everything to the recorder (so the full event
//! stream, counters, and histograms are available for Chrome-trace
//! export), and *additionally* mirrors the three legacy event kinds into
//! its own compact [`TraceEvent`] list so the pre-existing analysis API
//! (`reconfigurations`, `mean_occupancy`, `render_occupancy`) keeps
//! working unchanged.
//!
//! Times are carried in [`Cycles`] (exact integers); conversion to
//! seconds happens once, at render time, using the engine clock.

use planaria_model::units::Cycles;
use planaria_model::DnnId;
use planaria_telemetry::{
    chrome_trace, occupancy_tsv, Collector, Counter, Event, Metric, MetricsReport,
    RecordingCollector, SimMeta,
};
use std::fmt::Write as _;

/// One scheduling event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Simulation time in cycles since the run's first arrival.
    pub time: Cycles,
    /// What happened.
    pub kind: EventKind,
}

/// Event payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A request entered the queue.
    Arrival {
        /// Request id.
        request: u64,
        /// Its network.
        dnn: DnnId,
    },
    /// The scheduler changed a tenant's allocation (0 = queued).
    Allocation {
        /// Request id.
        request: u64,
        /// Previous subarray count.
        from: u32,
        /// New subarray count.
        to: u32,
    },
    /// A request finished.
    Completion {
        /// Request id.
        request: u64,
        /// End-to-end latency in cycles.
        latency: Cycles,
    },
}

/// The recorded event stream of one simulation.
#[derive(Debug, Clone, Default)]
pub struct EngineTrace {
    recording: RecordingCollector,
    events: Vec<TraceEvent>,
    total_subarrays: u32,
    freq_hz: f64,
}

impl EngineTrace {
    /// Creates an empty trace for a chip of `total_subarrays` granules
    /// clocked at `freq_hz`.
    pub fn new(total_subarrays: u32, freq_hz: f64) -> Self {
        Self {
            recording: RecordingCollector::new(),
            events: Vec::new(),
            total_subarrays,
            freq_hz,
        }
    }

    /// Records a legacy event directly (tests and manual construction).
    pub(crate) fn push(&mut self, time: Cycles, kind: EventKind) {
        self.events.push(TraceEvent { time, kind });
    }

    /// All legacy-view events in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The full underlying recording (every event kind, counters,
    /// histograms) for export.
    pub fn collector(&self) -> &RecordingCollector {
        &self.recording
    }

    /// The aggregated counters and histograms of the run.
    pub fn metrics(&self) -> MetricsReport {
        self.recording.report()
    }

    /// Renders the full recording as Chrome trace-event JSON
    /// (Perfetto-loadable).
    pub fn chrome_trace(&self) -> String {
        chrome_trace(&self.recording)
    }

    /// Renders the chip-occupancy timeline as TSV.
    pub fn occupancy_tsv(&self) -> String {
        occupancy_tsv(&self.recording)
    }

    /// Number of allocation changes that resized or preempted a *running*
    /// tenant (i.e. actual reconfigurations, `from > 0`).
    pub fn reconfigurations(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Allocation { from, to, .. } if from > 0 && from != to))
            .count()
    }

    /// Time-weighted mean chip occupancy (allocated subarrays / total) over
    /// the span of the trace.
    pub fn mean_occupancy(&self) -> f64 {
        let mut alloc: std::collections::BTreeMap<u64, u32> = std::collections::BTreeMap::new();
        let mut last_t: Option<Cycles> = None;
        let mut acc = 0.0;
        let mut span = 0.0;
        for e in &self.events {
            if let Some(prev) = last_t {
                let dt = e.time.saturating_sub(prev).as_f64();
                let used: u32 = alloc.values().sum();
                acc += dt * f64::from(used) / f64::from(self.total_subarrays.max(1));
                span += dt;
            }
            last_t = Some(e.time);
            match e.kind {
                EventKind::Allocation { request, to, .. } => {
                    alloc.insert(request, to);
                }
                EventKind::Completion { request, .. } => {
                    alloc.remove(&request);
                }
                EventKind::Arrival { .. } => {}
            }
        }
        if span > 0.0 {
            acc / span
        } else {
            0.0
        }
    }

    /// Renders a coarse text timeline of chip occupancy: `buckets` columns,
    /// each showing the occupancy decile (0-9) at that moment. Bounds are
    /// shown in seconds (converted from cycles at the engine clock).
    pub fn render_occupancy(&self, buckets: usize) -> String {
        if self.events.is_empty() || buckets == 0 {
            return String::from("(empty trace)");
        }
        // lint: the is_empty() guard above ensures first/last exist
        let c0 = self.events.first().unwrap().time;
        // lint: the is_empty() guard above ensures first/last exist
        let c1 = self.events.last().unwrap().time;
        let span = (c1.as_f64() - c0.as_f64()).max(1e-12);
        let mut samples = vec![0u32; buckets];
        let mut alloc: std::collections::BTreeMap<u64, u32> = std::collections::BTreeMap::new();
        let mut ei = 0;
        for (b, sample) in samples.iter_mut().enumerate() {
            let t = c0.as_f64() + span * (b as f64 + 0.5) / buckets as f64;
            while ei < self.events.len() && self.events[ei].time.as_f64() <= t {
                match self.events[ei].kind {
                    EventKind::Allocation { request, to, .. } => {
                        alloc.insert(request, to);
                    }
                    EventKind::Completion { request, .. } => {
                        alloc.remove(&request);
                    }
                    EventKind::Arrival { .. } => {}
                }
                ei += 1;
            }
            *sample = alloc.values().sum();
        }
        let freq = if self.freq_hz > 0.0 {
            self.freq_hz
        } else {
            1.0
        };
        let t0 = c0.seconds_at(freq);
        let t1 = c1.seconds_at(freq);
        let mut out = String::new();
        let _ = write!(out, "occupancy [{t0:.4}s..{t1:.4}s] ");
        for s in samples {
            let decile = (u64::from(s) * 9 / u64::from(self.total_subarrays.max(1))).min(9);
            let _ = write!(out, "{decile}");
        }
        out
    }
}

impl Collector for EngineTrace {
    #[inline]
    fn is_enabled(&self) -> bool {
        true
    }

    fn set_meta(&mut self, meta: SimMeta) {
        self.total_subarrays = meta.total_subarrays;
        self.freq_hz = meta.freq_hz;
        self.recording.set_meta(meta);
    }

    fn record(&mut self, ts: Cycles, event: Event) {
        // Mirror the legacy event kinds for the analysis helpers, then
        // forward everything to the full recording.
        match event {
            Event::Arrival { tenant, dnn } => self.push(
                ts,
                EventKind::Arrival {
                    request: tenant,
                    dnn,
                },
            ),
            Event::Allocation {
                tenant, from, to, ..
            } => self.push(
                ts,
                EventKind::Allocation {
                    request: tenant,
                    from,
                    to,
                },
            ),
            Event::Completion { tenant, latency } => self.push(
                ts,
                EventKind::Completion {
                    request: tenant,
                    latency,
                },
            ),
            _ => {}
        }
        self.recording.record(ts, event);
    }

    fn add(&mut self, counter: Counter, delta: u64) {
        self.recording.add(counter, delta);
    }

    fn sample(&mut self, metric: Metric, value: f64) {
        self.recording.sample(metric, value);
    }

    fn observe(&mut self, metric: Metric, cycles: u64) {
        self.recording.observe(metric, cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_trace() -> EngineTrace {
        // One cycle == one second (freq 1 Hz) keeps expectations readable.
        let mut t = EngineTrace::new(16, 1.0);
        t.push(
            Cycles::ZERO,
            EventKind::Arrival {
                request: 0,
                dnn: DnnId::ResNet50,
            },
        );
        t.push(
            Cycles::ZERO,
            EventKind::Allocation {
                request: 0,
                from: 0,
                to: 16,
            },
        );
        t.push(
            Cycles::new(1),
            EventKind::Arrival {
                request: 1,
                dnn: DnnId::Gnmt,
            },
        );
        t.push(
            Cycles::new(1),
            EventKind::Allocation {
                request: 0,
                from: 16,
                to: 8,
            },
        );
        t.push(
            Cycles::new(1),
            EventKind::Allocation {
                request: 1,
                from: 0,
                to: 8,
            },
        );
        t.push(
            Cycles::new(2),
            EventKind::Completion {
                request: 0,
                latency: Cycles::new(2),
            },
        );
        t.push(
            Cycles::new(3),
            EventKind::Completion {
                request: 1,
                latency: Cycles::new(2),
            },
        );
        t
    }

    #[test]
    fn reconfigurations_count_running_resizes_only() {
        // Only request 0's 16 -> 8 resize is a reconfiguration; initial
        // grants from 0 are fresh starts.
        assert_eq!(demo_trace().reconfigurations(), 1);
    }

    #[test]
    fn occupancy_accounts_time_weighted() {
        // [0,1): 16/16; [1,2): 16/16 (8+8); [2,3): 8/16 → mean = 7/8.
        let occ = demo_trace().mean_occupancy();
        assert!((occ - (1.0 + 1.0 + 0.5) / 3.0).abs() < 1e-9, "got {occ}");
    }

    #[test]
    fn timeline_renders_with_requested_width() {
        let s = demo_trace().render_occupancy(10);
        assert!(s.contains("occupancy"));
        let digits: String = s.chars().rev().take(10).collect();
        assert!(digits.chars().all(|c| c.is_ascii_digit()));
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        assert_eq!(
            EngineTrace::new(16, 1.0).render_occupancy(8),
            "(empty trace)"
        );
        assert_eq!(EngineTrace::new(16, 1.0).mean_occupancy(), 0.0);
    }

    #[test]
    fn collector_impl_mirrors_legacy_kinds_and_forwards_all() {
        let mut t = EngineTrace::new(16, 1e9);
        assert!(t.is_enabled());
        t.set_meta(SimMeta {
            freq_hz: 700e6,
            total_subarrays: 16,
        });
        assert_eq!(t.total_subarrays, 16);
        t.record(
            Cycles::ZERO,
            Event::Arrival {
                tenant: 3,
                dnn: DnnId::YoloV3,
            },
        );
        t.record(
            Cycles::new(5),
            Event::Allocation {
                tenant: 3,
                from: 0,
                to: 4,
                mask: 0b1111,
            },
        );
        // Non-legacy kinds are recorded but not mirrored.
        t.record(
            Cycles::new(5),
            Event::QueueWait {
                tenant: 3,
                start: Cycles::ZERO,
                duration: Cycles::new(5),
            },
        );
        t.record(
            Cycles::new(9),
            Event::Completion {
                tenant: 3,
                latency: Cycles::new(9),
            },
        );
        t.add(Counter::Arrivals, 1);
        t.sample(Metric::QueueDepth, 1.0);
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.collector().events().len(), 4);
        assert_eq!(t.metrics().counter(Counter::Arrivals), 1);
        assert!(matches!(
            t.events()[2].kind,
            EventKind::Completion {
                request: 3,
                latency
            } if latency == Cycles::new(9)
        ));
    }
}
