//! Planaria's primary contribution: the spatial task scheduler
//! (Algorithm 1) and the multi-tenant fission runtime.
//!
//! The [`engine::PlanariaEngine`] is a discrete-event simulator of one
//! Planaria-equipped node: requests arrive (Poisson traces from
//! `planaria-workload`), the scheduler fissions the chip into logical
//! accelerators sized per task, and tasks progress tile-by-tile using the
//! configuration tables from `planaria-compiler`. Scheduling events fire on
//! every task arrival and completion, exactly as §V prescribes; allocation
//! changes take effect at tile boundaries and pay the reconfiguration cost
//! of §IV-C.
//!
//! [`cluster`] adds the scaled-out multi-node setting of Fig. 16.
//!
//! # Example
//!
//! ```
//! use planaria_arch::AcceleratorConfig;
//! use planaria_core::PlanariaEngine;
//! use planaria_workload::{QosLevel, Scenario, TraceConfig};
//!
//! let engine = PlanariaEngine::new(AcceleratorConfig::planaria());
//! let trace = TraceConfig::new(Scenario::B, QosLevel::Soft, 50.0, 20, 1).generate();
//! let result = engine.run(&trace);
//! assert_eq!(result.completions.len(), 20);
//! ```

pub mod cluster;
pub mod engine;
pub mod fleet;
pub mod sched_state;
pub mod scheduler;
pub mod trace;

pub use cluster::{
    dispatch, min_nodes_for_sla, run_cluster, run_cluster_fabric, run_cluster_recorded,
    run_cluster_stats, run_cluster_streamed, run_cluster_with, ClusterDispatcher, ClusterStats,
    DispatchPolicy,
};
pub use engine::{PlanariaEngine, SchedulingMode, SpatialPolicy};
pub use fleet::GeoFleet;
pub use planaria_compiler::CompiledLibrary;
pub use planaria_model::units::{Bytes, Cycles, Picojoules};
pub use planaria_model::SplitMix64;
pub use planaria_sim::{FabricStats, FabricTuning, NodeLoad};
pub use sched_state::{FloorEntry, SchedState, Seed};
pub use scheduler::{
    allocate_spatially_into, min_slack_cycles, schedule_tasks_spatially, AllocScratch, SchedTask,
};
pub use trace::{EngineTrace, EventKind, TraceEvent};
