//! The Planaria node engine: spatial multi-tenant execution on the
//! shared discrete-event kernel.
//!
//! Events are task arrivals and completions (the paper's two scheduler
//! triggers, §V). The integer-cycle event loop — admission, work
//! advancement, completion detection, retirement — lives in
//! [`planaria_sim`]; this module keeps only Planaria's *decisions*:
//! Algorithm 1 allocation, physical ring placement with defragmentation,
//! hysteresis, and the §IV-C reconfiguration costs an allocation change
//! incurs. No float-seconds arithmetic happens here; seconds exist only
//! at the [`SimResult`] boundary inside the kernel.

use crate::sched_state::{SchedState, Seed};
use crate::scheduler::{allocate_spatially_into, min_slack_cycles, AllocScratch, SchedTask};
use crate::trace::EngineTrace;
use planaria_arch::{AcceleratorConfig, Allocation, Arrangement, Chip};
use planaria_compiler::{CompiledDnn, CompiledLibrary};
use planaria_model::units::Cycles;
use planaria_sim::{subarray_mask, EnginePolicy, SimState};
use planaria_telemetry::{Collector, Counter, Event, Metric, NullCollector};
use planaria_timing::{reconfiguration_cycles, ExecContext, CONFIG_LOAD_CYCLES};
use planaria_workload::{Request, SimResult};
use std::sync::Arc;

/// How the engine assigns the chip to queued tenants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulingMode {
    /// The paper's Algorithm 1: QoS-aware spatial co-location.
    #[default]
    Spatial,
    /// Ablation: the fission hardware without spatial scheduling — the
    /// whole chip goes to the oldest queued task (per-layer fission still
    /// applies inside each run).
    ExclusiveFifo,
}

/// A single Planaria-equipped node.
#[derive(Debug, Clone)]
pub struct PlanariaEngine {
    library: CompiledLibrary,
    mode: SchedulingMode,
    incremental: bool,
}

impl PlanariaEngine {
    /// Builds an engine for `cfg`, compiling the benchmark suite at most
    /// once per distinct geometry (the process-wide
    /// [`CompiledLibrary::shared_for`] cache) — an N-node fleet with K
    /// chip shapes pays K compiles, not N.
    pub fn new(cfg: AcceleratorConfig) -> Self {
        Self {
            library: CompiledLibrary::clone(&CompiledLibrary::shared_for(&cfg)),
            mode: SchedulingMode::Spatial,
            incremental: true,
        }
    }

    /// Builds an engine over an existing compiled library (cheap; lets many
    /// simulations share one compilation).
    pub fn with_library(library: CompiledLibrary) -> Self {
        Self {
            library,
            mode: SchedulingMode::Spatial,
            incremental: true,
        }
    }

    /// Selects the scheduling mode (ablation hook).
    pub fn with_mode(mut self, mode: SchedulingMode) -> Self {
        self.mode = mode;
        self
    }

    /// Toggles incremental Algorithm 1 (default **on**). With `false`, every
    /// scheduling event rescans `ESTIMATERESOURCES` from 1 for every tenant
    /// — the full-rescan oracle the `incremental_equivalence` property test
    /// and the `scale` bench race against. Both settings produce bit-
    /// identical results; the knob only trades scheduler work.
    pub fn with_incremental(mut self, incremental: bool) -> Self {
        self.incremental = incremental;
        self
    }

    /// The compiled library backing this engine.
    pub fn library(&self) -> &CompiledLibrary {
        &self.library
    }

    fn cfg(&self) -> &AcceleratorConfig {
        self.library.config()
    }

    /// Simulates one trace (must be sorted by arrival time).
    ///
    /// # Panics
    ///
    /// Panics if the trace is not sorted by arrival.
    pub fn run(&self, trace: &[Request]) -> SimResult {
        self.run_with_collector(trace, &mut NullCollector)
    }

    /// Like [`run`](Self::run), additionally recording the scheduling-event
    /// trace for telemetry analysis.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not sorted by arrival.
    pub fn run_traced(&self, trace: &[Request]) -> (SimResult, EngineTrace) {
        let mut t = EngineTrace::new(self.cfg().num_subarrays(), self.cfg().freq_hz);
        let result = self.run_with_collector(trace, &mut t);
        (result, t)
    }

    /// Simulates one trace, streaming telemetry into `c`.
    ///
    /// The simulation itself never branches on the collector: with
    /// [`NullCollector`] every hook inlines to a no-op and the results are
    /// bit-identical to [`run`](Self::run) (proven by a test below).
    ///
    /// # Panics
    ///
    /// Panics if the trace is not sorted by arrival.
    pub fn run_with_collector<C: Collector>(&self, trace: &[Request], c: &mut C) -> SimResult {
        let mut policy = self.spatial_policy();
        planaria_sim::run(self.cfg(), trace, &mut policy, c)
    }

    /// [`run`](Self::run) over a pull-based request source: requests are
    /// drawn lazily (the kernel keeps one not-yet-due arrival outstanding),
    /// so a million-request [`TraceStream`](planaria_workload::TraceStream)
    /// is simulated with O(live tenants) resident request memory and
    /// results bit-identical to the materialized path.
    ///
    /// # Panics
    ///
    /// Panics if the source yields arrivals out of order.
    pub fn run_streamed<I: IntoIterator<Item = Request>>(&self, requests: I) -> SimResult {
        self.run_streamed_with_collector(requests, &mut NullCollector)
    }

    /// [`run_streamed`](Self::run_streamed) with a telemetry collector.
    ///
    /// # Panics
    ///
    /// Panics if the source yields arrivals out of order.
    pub fn run_streamed_with_collector<C: Collector, I: IntoIterator<Item = Request>>(
        &self,
        requests: I,
        c: &mut C,
    ) -> SimResult {
        let mut policy = self.spatial_policy();
        planaria_sim::run_streamed(self.cfg(), requests, &mut policy, c)
    }

    /// A fresh kernel policy for one simulation run (or one cluster
    /// node): Algorithm 1 with this engine's mode and its own private
    /// scheduling state. The cluster fabric holds one per node;
    /// heterogeneous clusters mix these with PREMA's temporal policy.
    pub fn spatial_policy(&self) -> SpatialPolicy<'_> {
        SpatialPolicy {
            library: &self.library,
            mode: self.mode,
            incremental: self.incremental,
            // Derived once per policy, not per event: the urgency clamp
            // is 1 µs of this chip's clock.
            min_slack: min_slack_cycles(self.cfg().freq_hz),
            reference: false,
            state: SchedState::new(),
            chip: Chip::new(*self.cfg()),
            s: Scratch::default(),
        }
    }
}

/// The Planaria scheduling policy plugged into the kernel: Algorithm 1
/// plus ring placement and reconfiguration accounting.
///
/// Everything the per-event path needs lives here and is reused across
/// events: the id-keyed floor memo ([`SchedState`]), the physical chip
/// map, and the columnar scratch buffers — so a steady-state scheduling
/// event performs no heap allocation beyond the `Allocation` segments of
/// tenants whose placement actually changed.
pub struct SpatialPolicy<'a> {
    library: &'a CompiledLibrary,
    mode: SchedulingMode,
    /// Whether to consult the floor memo (the full-rescan oracle sets
    /// `false` and scans every tenant from 1; results are identical).
    incremental: bool,
    /// Unfit-path urgency clamp: 1 µs of this chip's clock, in cycles.
    min_slack: i64,
    /// Whether to run the complete pre-overhaul scheduling hot path
    /// ([`reschedule_reference`](Self::reschedule_reference)) instead of
    /// the overhauled one. Results are bit-identical either way — only
    /// the per-event cost differs — so this is a baseline lane for the
    /// kernel bench, not a behavior knob.
    reference: bool,
    /// Persistent per-tenant estimate memo, keyed by request id — immune
    /// to the kernel's `swap_remove` retirement reordering.
    state: SchedState,
    /// Persistent chip map, `reset()` per event instead of reallocated.
    chip: Chip,
    /// Reusable per-event working memory.
    s: Scratch,
}

/// Columnar scratch reused across scheduling events. Buffers grow to the
/// live-tenant high-water mark once and are only `clear()`ed afterwards.
#[derive(Debug, Default)]
struct Scratch {
    priorities: Vec<u32>,
    slacks: Vec<i64>,
    estimates: Vec<u32>,
    fit: Vec<Cycles>,
    alloc: Vec<u32>,
    keep: Vec<bool>,
    migrated: Vec<bool>,
    placements: Vec<Option<Allocation>>,
    order: Vec<usize>,
    sched: AllocScratch,
}

impl SpatialPolicy<'_> {
    /// The same policy running the complete pre-overhaul scheduling hot
    /// path ([`reschedule_reference`](Self::reschedule_reference)): the
    /// baseline lane of the kernel bench race. Every decision is
    /// bit-identical to the overhauled path (pinned by the scheduler's
    /// reference-equivalence property test and the kernel-equivalence
    /// suite); only the per-event cost differs.
    #[must_use]
    pub fn with_reference_hot_path(mut self) -> Self {
        self.reference = true;
        self
    }

    /// The scheduling hot path exactly as it stood before the kernel
    /// overhaul, preserved verbatim (the `scheduler::reference`
    /// philosophy applied to the whole `reschedule` body): eager
    /// `SchedTask` views (`fraction_done` on every tenant every event),
    /// a placement sort over the full live list including the queued
    /// zeros, allocating stable sorts, and comparator-evaluated unfit
    /// scores via [`reference::allocate_spatially_reference_into`].
    /// Paired with the oracle kernel's heap/`BTreeMap` containers this
    /// reconstructs the complete pre-PR per-event path, so the kernel
    /// bench's baseline lane measures what the overhaul actually
    /// replaced; the kernel-equivalence suite pins both lanes to
    /// byte-identical results.
    ///
    /// [`reference::allocate_spatially_reference_into`]:
    /// crate::scheduler::reference::allocate_spatially_reference_into
    fn reschedule_reference<C: Collector>(&mut self, sim: &mut SimState, c: &mut C) {
        let total = sim.total_subarrays();
        let now = sim.now;
        let cfg = *sim.config();
        let s = &mut self.s;
        let state = &mut self.state;
        let chip = &mut self.chip;
        s.alloc.clear();
        match self.mode {
            SchedulingMode::Spatial => {
                s.priorities.clear();
                s.slacks.clear();
                s.estimates.clear();
                s.fit.clear();
                for t in &sim.tenants {
                    let slack = slack_cycles(t.deadline_cycle, now);
                    let view = SchedTask {
                        priority: t.request.priority,
                        slack,
                        done: t.fraction_done(),
                        compiled: &t.compiled,
                    };
                    let (est, fit) = if self.incremental {
                        match state.seed(t.request.id, t.work_done, t.work_total, slack) {
                            Seed::Exact(floor, fit) => (floor, fit),
                            Seed::Floor(floor) => {
                                let (est, fit) = view.estimate_resources_with_fit(floor, total);
                                state.record(t.request.id, est, t.work_done, t.work_total, fit);
                                (est, fit)
                            }
                        }
                    } else {
                        view.estimate_resources_with_fit(1, total)
                    };
                    s.priorities.push(t.request.priority);
                    s.slacks.push(slack);
                    s.estimates.push(est);
                    s.fit.push(fit);
                }
                if self.incremental {
                    state.prune(sim.tenants.len(), |id| sim.index_of(id).is_some());
                }
                crate::scheduler::reference::allocate_spatially_reference_into(
                    &s.priorities,
                    &s.slacks,
                    &s.estimates,
                    &s.fit,
                    total,
                    self.min_slack,
                    &mut s.alloc,
                    &mut s.sched,
                );
            }
            SchedulingMode::ExclusiveFifo => {
                s.alloc.resize(sim.tenants.len(), 0);
                let oldest = sim
                    .tenants
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, t)| t.arrival_cycle)
                    .map(|(i, _)| i);
                if let Some(i) = oldest {
                    s.alloc[i] = total;
                }
            }
        }
        let tenants = &mut sim.tenants;

        chip.reset();
        s.keep.clear();
        s.keep.resize(tenants.len(), false);
        for (i, (t, &a)) in tenants.iter().zip(&s.alloc).enumerate() {
            let kept_count = a == t.alloc || (t.alloc > 0 && a == t.alloc + 1);
            if kept_count && t.alloc > 0 {
                if let Some(p) = &t.placement {
                    if p.len() == t.alloc {
                        for id in p.subarrays() {
                            debug_assert!(chip.owner_of(*id).is_none());
                        }
                        let claimed = chip.claim(t.request.id, p);
                        debug_assert!(claimed);
                        s.keep[i] = true;
                    }
                }
            }
        }
        s.placements.clear();
        s.placements.resize(tenants.len(), None);
        s.order.clear();
        s.order.extend((0..tenants.len()).filter(|&i| !s.keep[i]));
        s.order.sort_by_key(|&i| std::cmp::Reverse(s.alloc[i]));
        let mut defrag_needed = false;
        for &i in &s.order {
            if s.alloc[i] == 0 {
                continue;
            }
            match chip.place(tenants[i].request.id, s.alloc[i]) {
                Some(p) => s.placements[i] = Some(p),
                None => {
                    defrag_needed = true;
                    break;
                }
            }
        }
        s.migrated.clear();
        s.migrated.resize(tenants.len(), false);
        if defrag_needed {
            chip.reset();
            s.order.clear();
            s.order.extend(0..tenants.len());
            s.order.sort_by_key(|&i| std::cmp::Reverse(s.alloc[i]));
            s.placements.fill(None);
            for &i in &s.order {
                if s.alloc[i] == 0 {
                    continue;
                }
                let p = chip
                    .place(tenants[i].request.id, s.alloc[i])
                    // lint: every tenant was released above and Σalloc ≤ chip
                    // capacity, so a contiguous placement always exists
                    .expect("defragmented ring always packs");
                if s.keep[i] {
                    if tenants[i]
                        .placement
                        .as_ref()
                        .is_some_and(|old| old.subarrays() != p.subarrays())
                    {
                        s.migrated[i] = true;
                        s.keep[i] = false;
                        s.placements[i] = Some(p);
                    }
                } else {
                    s.placements[i] = Some(p);
                }
            }
        }

        let telemetry_on = c.is_enabled();
        for (i, (t, &a)) in tenants.iter_mut().zip(&s.alloc).enumerate() {
            let old_mask = t.mask;
            if !s.keep[i] {
                t.placement = s.placements[i].take();
            }
            if telemetry_on {
                t.mask = subarray_mask(t.placement.as_ref());
            }
            if a == t.alloc && !s.migrated[i] {
                continue;
            }
            if t.alloc > 0 && a == t.alloc + 1 && !s.migrated[i] {
                continue;
            }
            if telemetry_on {
                if t.alloc > 0 {
                    c.record(
                        now,
                        Event::ExecSlice {
                            tenant: t.request.id,
                            subarrays: t.alloc,
                            mask: old_mask,
                            start: t.slice_start,
                            duration: now.saturating_sub(t.slice_start),
                        },
                    );
                }
                c.record(
                    now,
                    Event::Allocation {
                        tenant: t.request.id,
                        from: t.alloc,
                        to: a,
                        mask: t.mask,
                    },
                );
                if t.alloc == 0 && a > 0 {
                    let wait = now.saturating_sub(t.queued_since);
                    c.record(
                        now,
                        Event::QueueWait {
                            tenant: t.request.id,
                            start: t.queued_since,
                            duration: wait,
                        },
                    );
                    c.sample(Metric::QueueWaitCycles, wait.as_f64());
                }
                if a > 0 {
                    c.sample(Metric::AllocationSize, f64::from(a));
                }
            }
            if a > 0 {
                t.slice_start = now;
            } else {
                t.queued_since = now;
            }
            if t.alloc > 0 && !t.work_done.is_zero() && t.work_done < t.work_total {
                let (boundary, tile_bytes, cost) = {
                    let old_table = t.compiled.table(t.alloc);
                    let pos = old_table.position(t.fraction_done());
                    let old_arr = old_table.layers()[pos.layer].arrangement;
                    let new_arr = if a > 0 {
                        Arrangement::monolithic(a)
                    } else {
                        old_arr
                    };
                    let ctx = ExecContext::for_allocation(&cfg, t.alloc.max(1));
                    let cost = reconfiguration_cycles(&ctx, old_arr, new_arr, pos.tile_bytes);
                    (pos.cycles_to_boundary, pos.tile_bytes, cost)
                };
                if telemetry_on {
                    c.record(
                        now,
                        Event::Reconfig {
                            tenant: t.request.id,
                            boundary,
                            drain: cost.drain,
                            checkpoint: cost.checkpoint,
                            config_swap: cost.config_swap,
                            refill: cost.refill,
                            checkpoint_bytes: tile_bytes,
                        },
                    );
                    c.add(Counter::Reconfigurations, 1);
                    c.add(Counter::DrainCycles, cost.drain.get());
                    c.add(Counter::CheckpointCycles, cost.checkpoint.get());
                    c.add(Counter::ConfigSwapCycles, cost.config_swap.get());
                    c.add(Counter::RefillCycles, cost.refill.get());
                    c.add(Counter::CheckpointBytes, tile_bytes.get());
                    c.sample(Metric::ReconfigCycles, cost.total().as_f64());
                }
                t.overhead += boundary + cost.total();
            } else if a > 0 && t.alloc == 0 {
                t.overhead += CONFIG_LOAD_CYCLES;
            }
            t.alloc = a;
            if a > 0 {
                let (work_total, table_energy) = {
                    let table = t.compiled.table(a);
                    (table.total_cycles(), table.total_energy())
                };
                t.switch_table(work_total, table_energy);
            }
        }
        if telemetry_on {
            c.add(Counter::SchedulingEvents, 1);
            let queued = tenants.iter().filter(|t| t.alloc == 0).count();
            let used: u32 = tenants.iter().map(|t| t.alloc).sum();
            c.sample(Metric::QueueDepth, queued as f64);
            c.sample(
                Metric::OccupancyPct,
                100.0 * f64::from(used) / f64::from(total.max(1)),
            );
        }
    }
}

/// Signed cycles from `now` to `deadline` (negative when past due).
fn slack_cycles(deadline: Cycles, now: Cycles) -> i64 {
    deadline.get() as i64 - now.get() as i64
}

impl EnginePolicy for SpatialPolicy<'_> {
    fn compiled_for(&mut self, request: &Request) -> Arc<CompiledDnn> {
        self.library.shared(request.dnn)
    }

    fn reschedule<C: Collector>(&mut self, sim: &mut SimState, c: &mut C) {
        if sim.tenants.is_empty() {
            return;
        }
        if self.reference {
            return self.reschedule_reference(sim, c);
        }
        let total = sim.total_subarrays();
        let now = sim.now;
        let cfg = *sim.config();
        let s = &mut self.s;
        let state = &mut self.state;
        let chip = &mut self.chip;
        s.alloc.clear();
        match self.mode {
            SchedulingMode::Spatial => {
                // Estimate phase: columnar views plus `ESTIMATERESOURCES`,
                // seeded from the id-keyed memo. Clean entries inside the
                // slack band answer with zero table lookups; clean-but-
                // tight entries scan from their proven floor; dirty ones
                // (progress, table switch, new tenant) scan from 1.
                s.priorities.clear();
                s.slacks.clear();
                s.estimates.clear();
                s.fit.clear();
                for t in &sim.tenants {
                    let slack = slack_cycles(t.deadline_cycle, now);
                    // Built lazily: an `Exact` memo hit answers without the
                    // view, so the queued-majority fastpath skips the
                    // `fraction_done` division entirely.
                    let view = || SchedTask {
                        priority: t.request.priority,
                        slack,
                        done: t.fraction_done(),
                        compiled: &t.compiled,
                    };
                    let (est, fit) = if self.incremental {
                        match state.seed(t.request.id, t.work_done, t.work_total, slack) {
                            // Exact hits skip the refresh too: the stored
                            // entry is bit-identical to what `record`
                            // would rewrite.
                            Seed::Exact(floor, fit) => (floor, fit),
                            Seed::Floor(floor) => {
                                let (est, fit) = view().estimate_resources_with_fit(floor, total);
                                state.record(t.request.id, est, t.work_done, t.work_total, fit);
                                (est, fit)
                            }
                        }
                    } else {
                        view().estimate_resources_with_fit(1, total)
                    };
                    s.priorities.push(t.request.priority);
                    s.slacks.push(slack);
                    s.estimates.push(est);
                    s.fit.push(fit);
                }
                if self.incremental {
                    state.prune(sim.tenants.len(), |id| sim.index_of(id).is_some());
                }
                allocate_spatially_into(
                    &s.priorities,
                    &s.slacks,
                    &s.estimates,
                    &s.fit,
                    total,
                    self.min_slack,
                    &mut s.alloc,
                    &mut s.sched,
                );
            }
            SchedulingMode::ExclusiveFifo => {
                s.alloc.resize(sim.tenants.len(), 0);
                let oldest = sim
                    .tenants
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, t)| t.arrival_cycle)
                    .map(|(i, _)| i);
                if let Some(i) = oldest {
                    s.alloc[i] = total;
                }
            }
        }
        let tenants = &mut sim.tenants;

        // Physical placement on the ring. Tenants keeping their allocation
        // keep their segment; changed tenants are re-placed into the free
        // gaps. If fragmentation blocks a contiguous fit, the chip is
        // defragmented: every tenant is re-placed in descending size order
        // and the *moved* ones pay a migration (their stationary weights
        // must be re-streamed into different physical subarrays).
        chip.reset();
        s.keep.clear();
        s.keep.resize(tenants.len(), false);
        for (i, (t, &a)) in tenants.iter().zip(&s.alloc).enumerate() {
            let kept_count = a == t.alloc || (t.alloc > 0 && a == t.alloc + 1);
            if kept_count && t.alloc > 0 {
                if let Some(p) = &t.placement {
                    if p.len() == t.alloc {
                        for id in p.subarrays() {
                            debug_assert!(chip.owner_of(*id).is_none());
                        }
                        // Re-claim the exact segment.
                        let claimed = chip.claim(t.request.id, p);
                        debug_assert!(claimed);
                        s.keep[i] = true;
                    }
                }
            }
        }
        // Kept tenants keep their `Allocation` in place (no clone); only
        // re-placed tenants get a fresh segment here.
        s.placements.clear();
        s.placements.resize(tenants.len(), None);
        s.order.clear();
        // Zero-allocation tenants (the queued backlog — the majority on a
        // saturated node) never place; dropping them before the sort
        // leaves the relative order of the placed set untouched (stable
        // sort) while shrinking it from O(live) to O(chip).
        s.order
            .extend((0..tenants.len()).filter(|&i| !s.keep[i] && s.alloc[i] != 0));
        s.order.sort_by_key(|&i| std::cmp::Reverse(s.alloc[i]));
        let mut defrag_needed = false;
        for &i in &s.order {
            match chip.place(tenants[i].request.id, s.alloc[i]) {
                Some(p) => s.placements[i] = Some(p),
                None => {
                    defrag_needed = true;
                    break;
                }
            }
        }
        s.migrated.clear();
        s.migrated.resize(tenants.len(), false);
        if defrag_needed {
            // Global defragmentation: lay everyone out afresh, largest
            // first (a multiset summing to <= total always packs a ring).
            chip.reset();
            s.order.clear();
            s.order.extend(0..tenants.len());
            s.order.sort_by_key(|&i| std::cmp::Reverse(s.alloc[i]));
            s.placements.fill(None);
            for &i in &s.order {
                if s.alloc[i] == 0 {
                    continue;
                }
                let p = chip
                    .place(tenants[i].request.id, s.alloc[i])
                    // lint: every tenant was released above and Σalloc ≤ chip
                    // capacity, so a contiguous placement always exists
                    .expect("defragmented ring always packs");
                if s.keep[i] {
                    if tenants[i]
                        .placement
                        .as_ref()
                        .is_some_and(|old| old.subarrays() != p.subarrays())
                    {
                        s.migrated[i] = true;
                        s.keep[i] = false;
                        s.placements[i] = Some(p);
                    }
                    // Unmoved kept tenant: the fresh segment equals the old
                    // one; keep the existing `Allocation` in place.
                } else {
                    s.placements[i] = Some(p);
                }
            }
        }

        let telemetry_on = c.is_enabled();
        for (i, (t, &a)) in tenants.iter_mut().zip(&s.alloc).enumerate() {
            let old_mask = t.mask;
            if !s.keep[i] {
                t.placement = s.placements[i].take();
            }
            if telemetry_on {
                // The mask is telemetry-only; skip the bit scan entirely
                // on the NullCollector hot path (it is never read there).
                t.mask = subarray_mask(t.placement.as_ref());
            }
            if a == t.alloc && !s.migrated[i] {
                continue;
            }
            // Hysteresis: growing a running tenant by a single subarray is
            // not worth a drain + checkpoint + refill cycle; keep the old
            // allocation (this only releases capacity, never over-commits).
            if t.alloc > 0 && a == t.alloc + 1 && !s.migrated[i] {
                continue;
            }
            if telemetry_on {
                // Close the execution slice the tenant just left.
                if t.alloc > 0 {
                    c.record(
                        now,
                        Event::ExecSlice {
                            tenant: t.request.id,
                            subarrays: t.alloc,
                            mask: old_mask,
                            start: t.slice_start,
                            duration: now.saturating_sub(t.slice_start),
                        },
                    );
                }
                c.record(
                    now,
                    Event::Allocation {
                        tenant: t.request.id,
                        from: t.alloc,
                        to: a,
                        mask: t.mask,
                    },
                );
                if t.alloc == 0 && a > 0 {
                    // Leaving the queue: emit the closed wait interval.
                    let wait = now.saturating_sub(t.queued_since);
                    c.record(
                        now,
                        Event::QueueWait {
                            tenant: t.request.id,
                            start: t.queued_since,
                            duration: wait,
                        },
                    );
                    c.sample(Metric::QueueWaitCycles, wait.as_f64());
                }
                if a > 0 {
                    c.sample(Metric::AllocationSize, f64::from(a));
                }
            }
            // Unconditional, branch-free bookkeeping (never read by the
            // simulation itself, so the NullCollector path stays
            // bit-identical).
            if a > 0 {
                t.slice_start = now;
            } else {
                t.queued_since = now;
            }
            if t.alloc > 0 && !t.work_done.is_zero() && t.work_done < t.work_total {
                // Preempted or resized mid-flight: finish the in-flight
                // tile, checkpoint it, swap configurations, refill.
                let (boundary, tile_bytes, cost) = {
                    let old_table = t.compiled.table(t.alloc);
                    let pos = old_table.position(t.fraction_done());
                    let old_arr = old_table.layers()[pos.layer].arrangement;
                    let new_arr = if a > 0 {
                        Arrangement::monolithic(a)
                    } else {
                        old_arr
                    };
                    let ctx = ExecContext::for_allocation(&cfg, t.alloc.max(1));
                    let cost = reconfiguration_cycles(&ctx, old_arr, new_arr, pos.tile_bytes);
                    (pos.cycles_to_boundary, pos.tile_bytes, cost)
                };
                if telemetry_on {
                    c.record(
                        now,
                        Event::Reconfig {
                            tenant: t.request.id,
                            boundary,
                            drain: cost.drain,
                            checkpoint: cost.checkpoint,
                            config_swap: cost.config_swap,
                            refill: cost.refill,
                            checkpoint_bytes: tile_bytes,
                        },
                    );
                    c.add(Counter::Reconfigurations, 1);
                    c.add(Counter::DrainCycles, cost.drain.get());
                    c.add(Counter::CheckpointCycles, cost.checkpoint.get());
                    c.add(Counter::ConfigSwapCycles, cost.config_swap.get());
                    c.add(Counter::RefillCycles, cost.refill.get());
                    c.add(Counter::CheckpointBytes, tile_bytes.get());
                    c.sample(Metric::ReconfigCycles, cost.total().as_f64());
                }
                t.overhead += boundary + cost.total();
            } else if a > 0 && t.alloc == 0 {
                // Fresh start on a new logical accelerator: pipeline fill
                // is already inside the table; charge the configuration
                // load only.
                t.overhead += CONFIG_LOAD_CYCLES;
            }
            t.alloc = a;
            if a > 0 {
                // Progress is a work *fraction*; the new table rescales it
                // exactly (no-op when the table is unchanged).
                let (work_total, table_energy) = {
                    let table = t.compiled.table(a);
                    (table.total_cycles(), table.total_energy())
                };
                t.switch_table(work_total, table_energy);
            }
        }
        if telemetry_on {
            c.add(Counter::SchedulingEvents, 1);
            let queued = tenants.iter().filter(|t| t.alloc == 0).count();
            let used: u32 = tenants.iter().map(|t| t.alloc).sum();
            c.sample(Metric::QueueDepth, queued as f64);
            c.sample(
                Metric::OccupancyPct,
                100.0 * f64::from(used) / f64::from(total.max(1)),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planaria_model::units::Picojoules;
    use planaria_model::DnnId;
    use planaria_workload::{Completion, QosLevel, Scenario, TraceConfig};

    fn engine() -> PlanariaEngine {
        PlanariaEngine::new(AcceleratorConfig::planaria())
    }

    fn single_request(dnn: DnnId, qos: f64) -> Request {
        Request {
            id: 0,
            dnn,
            arrival: 0.0,
            priority: 5,
            qos,
        }
    }

    #[test]
    fn lone_task_runs_at_isolated_speed() {
        let e = engine();
        let r = single_request(DnnId::ResNet50, 1.0);
        let result = e.run(&[r]);
        assert_eq!(result.completions.len(), 1);
        let latency = result.completions[0].latency();
        let isolated = e.library.isolated_latency(DnnId::ResNet50);
        assert!(
            (latency / isolated - 1.0).abs() < 0.01,
            "latency {latency}, isolated {isolated}"
        );
    }

    #[test]
    fn all_requests_complete_in_order_of_ids() {
        let e = engine();
        let trace = TraceConfig::new(Scenario::C, QosLevel::Soft, 100.0, 40, 11).generate();
        let result = e.run(&trace);
        assert_eq!(result.completions.len(), 40);
        for (i, c) in result.completions.iter().enumerate() {
            assert_eq!(c.request.id, i as u64);
            assert!(c.finish >= c.request.arrival);
        }
    }

    #[test]
    fn co_location_slows_tasks_less_than_serialization() {
        let e = engine();
        // Two simultaneous ResNet-50s: spatial co-location should finish
        // both well before 2x the isolated latency each.
        let iso = e.library.isolated_latency(DnnId::ResNet50);
        let trace = vec![
            Request {
                id: 0,
                dnn: DnnId::ResNet50,
                arrival: 0.0,
                priority: 5,
                qos: 1.0,
            },
            Request {
                id: 1,
                dnn: DnnId::ResNet50,
                arrival: 0.0,
                priority: 5,
                qos: 1.0,
            },
        ];
        let result = e.run(&trace);
        let worst = result
            .completions
            .iter()
            .map(Completion::latency)
            .fold(0.0, f64::max);
        assert!(worst < 2.0 * iso * 1.2, "worst {worst}, isolated {iso}");
        assert!(worst > iso * 0.9);
    }

    #[test]
    fn energy_and_makespan_are_positive() {
        let e = engine();
        let trace = TraceConfig::new(Scenario::B, QosLevel::Soft, 200.0, 20, 3).generate();
        let r = e.run(&trace);
        assert!(r.total_energy > Picojoules::ZERO);
        assert!(r.makespan > 0.0);
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn unsorted_trace_rejected() {
        let e = engine();
        let mut trace = TraceConfig::new(Scenario::B, QosLevel::Soft, 10.0, 5, 3).generate();
        trace.reverse();
        let _ = e.run(&trace);
    }

    #[test]
    fn empty_trace_is_fine() {
        let r = engine().run(&[]);
        assert!(r.completions.is_empty());
        assert_eq!(r.makespan, 0.0);
    }

    #[test]
    fn traced_run_matches_untraced_and_records_events() {
        let e = engine();
        let trace = TraceConfig::new(Scenario::C, QosLevel::Medium, 150.0, 30, 17).generate();
        let plain = e.run(&trace);
        let (traced, telemetry) = e.run_traced(&trace);
        assert_eq!(plain.completions, traced.completions);
        // Every request arrives and completes in the telemetry.
        use crate::trace::EventKind;
        let arrivals = telemetry
            .events()
            .iter()
            .filter(|ev| matches!(ev.kind, EventKind::Arrival { .. }))
            .count();
        let completions = telemetry
            .events()
            .iter()
            .filter(|ev| matches!(ev.kind, EventKind::Completion { .. }))
            .count();
        assert_eq!(arrivals, 30);
        assert_eq!(completions, 30);
        assert!(telemetry.mean_occupancy() > 0.0);
    }

    #[test]
    fn contended_runs_actually_reconfigure() {
        let e = engine();
        let trace = TraceConfig::new(Scenario::A, QosLevel::Soft, 400.0, 60, 23).generate();
        let (_, telemetry) = e.run_traced(&trace);
        assert!(
            telemetry.reconfigurations() > 0,
            "a contended trace must trigger dynamic fission"
        );
    }

    #[test]
    fn exclusive_mode_serializes() {
        let spatial = engine();
        let exclusive = PlanariaEngine::with_library(spatial.library().clone())
            .with_mode(SchedulingMode::ExclusiveFifo);
        let iso = spatial.library().isolated_latency(DnnId::ResNet50);
        let mk = |id| Request {
            id,
            dnn: DnnId::ResNet50,
            arrival: 0.0,
            priority: 5,
            qos: 1.0,
        };
        let r = exclusive.run(&[mk(0), mk(1), mk(2)]);
        let worst = r
            .completions
            .iter()
            .map(Completion::latency)
            .fold(0.0, f64::max);
        assert!(
            worst > 2.5 * iso,
            "FIFO-exclusive must serialize: {worst} vs {iso}"
        );
        // Spatial co-location beats it.
        let s = spatial.run(&[mk(0), mk(1), mk(2)]);
        let worst_s = s
            .completions
            .iter()
            .map(Completion::latency)
            .fold(0.0, f64::max);
        assert!(worst_s < worst);
    }
}
