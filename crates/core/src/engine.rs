//! The Planaria node engine: a discrete-event simulator of spatial
//! multi-tenant execution.
//!
//! Events are task arrivals and completions (the paper's two scheduler
//! triggers, §V). Between events every allocated task progresses at the
//! rate given by its configuration table; a task whose allocation changes
//! finishes its in-flight tile, pays the reconfiguration cost of §IV-C, and
//! resumes under the new table.

use crate::scheduler::{schedule_tasks_spatially, SchedTask};
use crate::trace::EngineTrace;
use planaria_arch::{AcceleratorConfig, Allocation, Arrangement, Chip};
use planaria_compiler::CompiledLibrary;
use planaria_energy::EnergyModel;
use planaria_model::units::{Cycles, Picojoules};
use planaria_telemetry::{Collector, Counter, Event, Metric, NullCollector, SimMeta};
use planaria_timing::{reconfiguration_cycles, ExecContext};
use planaria_workload::{Completion, Request, SimResult};

/// Work-fraction tolerance for completion detection.
const DONE_EPS: f64 = 1e-9;

#[derive(Debug, Clone)]
struct Tenant {
    request: Request,
    /// Completed work fraction.
    done: f64,
    /// Current allocation in subarrays (0 = queued).
    alloc: u32,
    /// Physical placement on the ring (None while queued).
    placement: Option<Allocation>,
    /// Cycles of reconfiguration overhead owed before progress resumes.
    overhead_cycles: f64,
    /// Dynamic energy accumulated so far.
    energy: Picojoules,
    /// When the current queue wait began (telemetry only; seconds).
    queued_since: f64,
    /// When the current execution slice began (telemetry only; seconds).
    slice_start: f64,
}

/// Converts seconds-since-run-start to exact telemetry cycles.
#[inline]
fn to_cycles(seconds: f64, freq_hz: f64) -> Cycles {
    Cycles::new((seconds * freq_hz).max(0.0).round() as u64)
}

/// Physical-placement bitmask (bit *i* set ⇔ subarray *i* owned; ids
/// beyond 63 saturate into bit 63 so masks stay `u64`).
fn placement_mask(p: Option<&Allocation>) -> u64 {
    let mut mask = 0u64;
    if let Some(p) = p {
        for id in p.subarrays() {
            mask |= 1u64 << (id.0.min(63));
        }
    }
    mask
}

/// How the engine assigns the chip to queued tenants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulingMode {
    /// The paper's Algorithm 1: QoS-aware spatial co-location.
    #[default]
    Spatial,
    /// Ablation: the fission hardware without spatial scheduling — the
    /// whole chip goes to the oldest queued task (per-layer fission still
    /// applies inside each run).
    ExclusiveFifo,
}

/// A single Planaria-equipped node.
#[derive(Debug, Clone)]
pub struct PlanariaEngine {
    library: CompiledLibrary,
    mode: SchedulingMode,
}

impl PlanariaEngine {
    /// Compiles the benchmark suite and builds an engine.
    pub fn new(cfg: AcceleratorConfig) -> Self {
        Self {
            library: CompiledLibrary::new(cfg),
            mode: SchedulingMode::Spatial,
        }
    }

    /// Builds an engine over an existing compiled library (cheap; lets many
    /// simulations share one compilation).
    pub fn with_library(library: CompiledLibrary) -> Self {
        Self {
            library,
            mode: SchedulingMode::Spatial,
        }
    }

    /// Selects the scheduling mode (ablation hook).
    pub fn with_mode(mut self, mode: SchedulingMode) -> Self {
        self.mode = mode;
        self
    }

    /// The compiled library backing this engine.
    pub fn library(&self) -> &CompiledLibrary {
        &self.library
    }

    fn cfg(&self) -> &AcceleratorConfig {
        self.library.config()
    }

    /// Simulates one trace (must be sorted by arrival time).
    ///
    /// # Panics
    ///
    /// Panics if the trace is not sorted by arrival.
    pub fn run(&self, trace: &[Request]) -> SimResult {
        self.run_with_collector(trace, &mut NullCollector)
    }

    /// Like [`run`](Self::run), additionally recording the scheduling-event
    /// trace for telemetry analysis.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not sorted by arrival.
    pub fn run_traced(&self, trace: &[Request]) -> (SimResult, EngineTrace) {
        let mut t = EngineTrace::new(self.cfg().num_subarrays(), self.cfg().freq_hz);
        let result = self.run_with_collector(trace, &mut t);
        (result, t)
    }

    /// Simulates one trace, streaming telemetry into `c`.
    ///
    /// The simulation itself never branches on the collector: with
    /// [`NullCollector`] every hook inlines to a no-op and the results are
    /// bit-identical to [`run`](Self::run) (proven by a test below).
    ///
    /// # Panics
    ///
    /// Panics if the trace is not sorted by arrival.
    pub fn run_with_collector<C: Collector>(&self, trace: &[Request], c: &mut C) -> SimResult {
        assert!(
            trace.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "trace must be sorted by arrival time"
        );
        let cfg = *self.cfg();
        let freq = cfg.freq_hz;
        let total = cfg.num_subarrays();
        let em = EnergyModel::for_config(&cfg);
        c.set_meta(SimMeta {
            freq_hz: freq,
            total_subarrays: total,
        });

        let mut tenants: Vec<Tenant> = Vec::new();
        let mut completions: Vec<Completion> = Vec::new();
        let mut next_arrival = 0usize;
        let mut now = trace.first().map_or(0.0, |r| r.arrival);
        let start = now;
        let mut busy_seconds = 0.0f64;

        while next_arrival < trace.len() || !tenants.is_empty() {
            // Next event: earliest of the next arrival and the earliest
            // completion among allocated tenants.
            let arrival_t = trace.get(next_arrival).map(|r| r.arrival);
            let completion_t = tenants
                .iter()
                .filter(|t| t.alloc > 0)
                .map(|t| now + self.remaining_seconds(t, freq))
                .fold(None::<f64>, |acc, x| Some(acc.map_or(x, |a: f64| a.min(x))));
            let t_next = match (arrival_t, completion_t) {
                (Some(a), Some(c)) => a.min(c),
                (Some(a), None) => a,
                (None, Some(c)) => c,
                (None, None) => break,
            };

            // Advance every allocated tenant to t_next.
            let dt = (t_next - now).max(0.0);
            if tenants.iter().any(|t| t.alloc > 0) {
                busy_seconds += dt;
            }
            let dt_cycles = dt * freq;
            for t in &mut tenants {
                if t.alloc > 0 {
                    self.advance(t, dt_cycles);
                }
            }
            now = t_next;

            // Admit all arrivals at t_next.
            while next_arrival < trace.len() && trace[next_arrival].arrival <= now + 1e-12 {
                let req = trace[next_arrival];
                if c.is_enabled() {
                    c.record(
                        to_cycles(now - start, freq),
                        Event::Arrival {
                            tenant: req.id,
                            dnn: req.dnn,
                        },
                    );
                    c.add(Counter::Arrivals, 1);
                }
                tenants.push(Tenant {
                    request: req,
                    done: 0.0,
                    alloc: 0,
                    placement: None,
                    overhead_cycles: 0.0,
                    energy: Picojoules::ZERO,
                    queued_since: now,
                    slice_start: now,
                });
                next_arrival += 1;
            }

            // Retire finished tenants.
            let mut i = 0;
            while i < tenants.len() {
                if tenants[i].done >= 1.0 - DONE_EPS {
                    let t = tenants.swap_remove(i);
                    if c.is_enabled() {
                        let ts_now = to_cycles(now - start, freq);
                        if t.alloc > 0 {
                            let s = to_cycles(t.slice_start - start, freq);
                            c.record(
                                ts_now,
                                Event::ExecSlice {
                                    tenant: t.request.id,
                                    subarrays: t.alloc,
                                    mask: placement_mask(t.placement.as_ref()),
                                    start: s,
                                    duration: ts_now.saturating_sub(s),
                                },
                            );
                        }
                        c.record(
                            ts_now,
                            Event::Completion {
                                tenant: t.request.id,
                                latency: to_cycles(now - t.request.arrival, freq),
                            },
                        );
                        c.add(Counter::Completions, 1);
                    }
                    completions.push(Completion {
                        request: t.request,
                        finish: now,
                        energy: t.energy,
                    });
                } else {
                    i += 1;
                }
            }

            // Scheduling event: re-run the allocator over the queue.
            self.reschedule(&mut tenants, now, start, total, freq, c);
        }

        completions.sort_by_key(|c| c.request.id);
        let makespan = (now - start).max(0.0);
        let dynamic: Picojoules = completions.iter().map(|c| c.energy).sum();
        // Static energy accrues while the chip serves tenants (idle gaps
        // between requests belong to whatever the node does next).
        SimResult {
            completions,
            total_energy: dynamic + em.static_energy(busy_seconds),
            makespan,
        }
    }

    /// Seconds until `t` completes at its current allocation.
    fn remaining_seconds(&self, t: &Tenant, freq: f64) -> f64 {
        let table = self.library.get(t.request.dnn).table(t.alloc);
        (t.overhead_cycles + table.remaining_cycles(t.done).as_f64()) / freq
    }

    /// Consumes `cycles` of execution: overhead first, then table progress
    /// (also accrues the pro-rata dynamic energy).
    fn advance(&self, t: &mut Tenant, mut cycles: f64) {
        if t.overhead_cycles > 0.0 {
            let burn = t.overhead_cycles.min(cycles);
            t.overhead_cycles -= burn;
            cycles -= burn;
        }
        if cycles <= 0.0 {
            return;
        }
        let table = self.library.get(t.request.dnn).table(t.alloc);
        let before = t.done;
        t.done = table.advance(t.done, Cycles::new(cycles.round() as u64));
        if t.done > 1.0 - DONE_EPS {
            t.done = 1.0;
        }
        t.energy += (t.done - before) * table.total_energy();
    }

    /// Runs the allocator and applies allocation changes (with
    /// reconfiguration overheads for preempted tenants).
    fn reschedule<C: Collector>(
        &self,
        tenants: &mut [Tenant],
        now: f64,
        start: f64,
        total: u32,
        freq: f64,
        c: &mut C,
    ) {
        if tenants.is_empty() {
            return;
        }
        let alloc = match self.mode {
            SchedulingMode::Spatial => {
                let views: Vec<SchedTask<'_>> = tenants
                    .iter()
                    .map(|t| SchedTask {
                        priority: t.request.priority,
                        slack: t.request.deadline() - now,
                        done: t.done,
                        compiled: self.library.get(t.request.dnn),
                    })
                    .collect();
                schedule_tasks_spatially(&views, total, freq)
            }
            SchedulingMode::ExclusiveFifo => {
                let oldest = tenants
                    .iter()
                    .enumerate()
                    .min_by(|a, b| {
                        a.1.request
                            .arrival
                            .partial_cmp(&b.1.request.arrival)
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|(i, _)| i);
                let mut v = vec![0u32; tenants.len()];
                if let Some(i) = oldest {
                    v[i] = total;
                }
                v
            }
        };
        let cfg = self.cfg();

        // Physical placement on the ring. Tenants keeping their allocation
        // keep their segment; changed tenants are re-placed into the free
        // gaps. If fragmentation blocks a contiguous fit, the chip is
        // defragmented: every tenant is re-placed in descending size order
        // and the *moved* ones pay a migration (their stationary weights
        // must be re-streamed into different physical subarrays).
        let mut chip = Chip::new(*cfg);
        let mut keep = vec![false; tenants.len()];
        for (i, (t, &a)) in tenants.iter().zip(&alloc).enumerate() {
            let kept_count = a == t.alloc || (t.alloc > 0 && a == t.alloc + 1);
            if kept_count && t.alloc > 0 {
                if let Some(p) = &t.placement {
                    if p.len() == t.alloc {
                        for id in p.subarrays() {
                            debug_assert!(chip.owner_of(*id).is_none());
                        }
                        // Re-claim the exact segment.
                        let claimed = chip.claim(t.request.id, p);
                        debug_assert!(claimed);
                        keep[i] = true;
                    }
                }
            }
        }
        let mut placements: Vec<Option<Allocation>> = tenants
            .iter()
            .enumerate()
            .map(|(i, t)| if keep[i] { t.placement.clone() } else { None })
            .collect();
        let mut order: Vec<usize> = (0..tenants.len()).filter(|&i| !keep[i]).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(alloc[i]));
        let mut defrag_needed = false;
        for &i in &order {
            if alloc[i] == 0 {
                continue;
            }
            match chip.place(tenants[i].request.id, alloc[i]) {
                Some(p) => placements[i] = Some(p),
                None => {
                    defrag_needed = true;
                    break;
                }
            }
        }
        let mut migrated = vec![false; tenants.len()];
        if defrag_needed {
            // Global defragmentation: lay everyone out afresh, largest
            // first (a multiset summing to <= total always packs a ring).
            chip.reset();
            let mut all: Vec<usize> = (0..tenants.len()).collect();
            all.sort_by_key(|&i| std::cmp::Reverse(alloc[i]));
            placements.fill(None);
            for &i in &all {
                if alloc[i] == 0 {
                    continue;
                }
                let p = chip
                    .place(tenants[i].request.id, alloc[i])
                    // lint: every tenant was released above and Σalloc ≤ chip
                    // capacity, so a contiguous placement always exists
                    .expect("defragmented ring always packs");
                if keep[i]
                    && tenants[i]
                        .placement
                        .as_ref()
                        .is_some_and(|old| old.subarrays() != p.subarrays())
                {
                    migrated[i] = true;
                    keep[i] = false;
                }
                placements[i] = Some(p);
            }
        }

        let telemetry_on = c.is_enabled();
        let ts_now = to_cycles(now - start, freq);
        for (i, (t, &a)) in tenants.iter_mut().zip(&alloc).enumerate() {
            let old_mask = if telemetry_on {
                placement_mask(t.placement.as_ref())
            } else {
                0
            };
            t.placement = placements[i].take();
            if a == t.alloc && !migrated[i] {
                continue;
            }
            // Hysteresis: growing a running tenant by a single subarray is
            // not worth a drain + checkpoint + refill cycle; keep the old
            // allocation (this only releases capacity, never over-commits).
            if t.alloc > 0 && a == t.alloc + 1 && !migrated[i] {
                continue;
            }
            if telemetry_on {
                // Close the execution slice the tenant just left.
                if t.alloc > 0 {
                    let s = to_cycles(t.slice_start - start, freq);
                    c.record(
                        ts_now,
                        Event::ExecSlice {
                            tenant: t.request.id,
                            subarrays: t.alloc,
                            mask: old_mask,
                            start: s,
                            duration: ts_now.saturating_sub(s),
                        },
                    );
                }
                c.record(
                    ts_now,
                    Event::Allocation {
                        tenant: t.request.id,
                        from: t.alloc,
                        to: a,
                        mask: placement_mask(t.placement.as_ref()),
                    },
                );
                if t.alloc == 0 && a > 0 {
                    // Leaving the queue: emit the closed wait interval.
                    let qs = to_cycles(t.queued_since - start, freq);
                    let wait = ts_now.saturating_sub(qs);
                    c.record(
                        ts_now,
                        Event::QueueWait {
                            tenant: t.request.id,
                            start: qs,
                            duration: wait,
                        },
                    );
                    c.sample(Metric::QueueWaitCycles, wait.as_f64());
                }
                if a > 0 {
                    c.sample(Metric::AllocationSize, f64::from(a));
                }
            }
            // Unconditional, branch-free bookkeeping (never read by the
            // simulation itself, so the NullCollector path stays
            // bit-identical).
            if a > 0 {
                t.slice_start = now;
            } else {
                t.queued_since = now;
            }
            if t.alloc > 0 && t.done > 0.0 && t.done < 1.0 {
                // Preempted or resized mid-flight: finish the in-flight
                // tile, checkpoint it, swap configurations, refill.
                let old_table = self.library.get(t.request.dnn).table(t.alloc);
                let pos = old_table.position(t.done);
                let old_arr = old_table.layers()[pos.layer].arrangement;
                let new_arr = if a > 0 {
                    Arrangement::monolithic(a)
                } else {
                    old_arr
                };
                let ctx = ExecContext::for_allocation(cfg, t.alloc.max(1));
                let cost = reconfiguration_cycles(&ctx, old_arr, new_arr, pos.tile_bytes);
                if telemetry_on {
                    c.record(
                        ts_now,
                        Event::Reconfig {
                            tenant: t.request.id,
                            boundary: pos.cycles_to_boundary,
                            drain: cost.drain,
                            checkpoint: cost.checkpoint,
                            config_swap: cost.config_swap,
                            refill: cost.refill,
                            checkpoint_bytes: pos.tile_bytes,
                        },
                    );
                    c.add(Counter::Reconfigurations, 1);
                    c.add(Counter::DrainCycles, cost.drain.get());
                    c.add(Counter::CheckpointCycles, cost.checkpoint.get());
                    c.add(Counter::ConfigSwapCycles, cost.config_swap.get());
                    c.add(Counter::RefillCycles, cost.refill.get());
                    c.add(Counter::CheckpointBytes, pos.tile_bytes.get());
                    c.sample(Metric::ReconfigCycles, cost.total().as_f64());
                }
                t.overhead_cycles += (pos.cycles_to_boundary + cost.total()).as_f64();
            } else if a > 0 && t.alloc == 0 {
                // Fresh start on a new logical accelerator: pipeline fill
                // is already inside the table; charge the configuration
                // load only.
                t.overhead_cycles += 16.0;
            }
            t.alloc = a;
        }
        if telemetry_on {
            c.add(Counter::SchedulingEvents, 1);
            let queued = tenants.iter().filter(|t| t.alloc == 0).count();
            let used: u32 = tenants.iter().map(|t| t.alloc).sum();
            c.sample(Metric::QueueDepth, queued as f64);
            c.sample(
                Metric::OccupancyPct,
                100.0 * f64::from(used) / f64::from(total.max(1)),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planaria_model::DnnId;
    use planaria_workload::{QosLevel, Scenario, TraceConfig};

    fn engine() -> PlanariaEngine {
        PlanariaEngine::new(AcceleratorConfig::planaria())
    }

    fn single_request(dnn: DnnId, qos: f64) -> Request {
        Request {
            id: 0,
            dnn,
            arrival: 0.0,
            priority: 5,
            qos,
        }
    }

    #[test]
    fn lone_task_runs_at_isolated_speed() {
        let e = engine();
        let r = single_request(DnnId::ResNet50, 1.0);
        let result = e.run(&[r]);
        assert_eq!(result.completions.len(), 1);
        let latency = result.completions[0].latency();
        let isolated = e.library.isolated_latency(DnnId::ResNet50);
        assert!(
            (latency / isolated - 1.0).abs() < 0.01,
            "latency {latency}, isolated {isolated}"
        );
    }

    #[test]
    fn all_requests_complete_in_order_of_ids() {
        let e = engine();
        let trace = TraceConfig::new(Scenario::C, QosLevel::Soft, 100.0, 40, 11).generate();
        let result = e.run(&trace);
        assert_eq!(result.completions.len(), 40);
        for (i, c) in result.completions.iter().enumerate() {
            assert_eq!(c.request.id, i as u64);
            assert!(c.finish >= c.request.arrival);
        }
    }

    #[test]
    fn co_location_slows_tasks_less_than_serialization() {
        let e = engine();
        // Two simultaneous ResNet-50s: spatial co-location should finish
        // both well before 2x the isolated latency each.
        let iso = e.library.isolated_latency(DnnId::ResNet50);
        let trace = vec![
            Request {
                id: 0,
                dnn: DnnId::ResNet50,
                arrival: 0.0,
                priority: 5,
                qos: 1.0,
            },
            Request {
                id: 1,
                dnn: DnnId::ResNet50,
                arrival: 0.0,
                priority: 5,
                qos: 1.0,
            },
        ];
        let result = e.run(&trace);
        let worst = result
            .completions
            .iter()
            .map(Completion::latency)
            .fold(0.0, f64::max);
        assert!(worst < 2.0 * iso * 1.2, "worst {worst}, isolated {iso}");
        assert!(worst > iso * 0.9);
    }

    #[test]
    fn energy_and_makespan_are_positive() {
        let e = engine();
        let trace = TraceConfig::new(Scenario::B, QosLevel::Soft, 200.0, 20, 3).generate();
        let r = e.run(&trace);
        assert!(r.total_energy > Picojoules::ZERO);
        assert!(r.makespan > 0.0);
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn unsorted_trace_rejected() {
        let e = engine();
        let mut trace = TraceConfig::new(Scenario::B, QosLevel::Soft, 10.0, 5, 3).generate();
        trace.reverse();
        let _ = e.run(&trace);
    }

    #[test]
    fn empty_trace_is_fine() {
        let r = engine().run(&[]);
        assert!(r.completions.is_empty());
        assert_eq!(r.makespan, 0.0);
    }

    #[test]
    fn traced_run_matches_untraced_and_records_events() {
        let e = engine();
        let trace = TraceConfig::new(Scenario::C, QosLevel::Medium, 150.0, 30, 17).generate();
        let plain = e.run(&trace);
        let (traced, telemetry) = e.run_traced(&trace);
        assert_eq!(plain.completions, traced.completions);
        // Every request arrives and completes in the telemetry.
        use crate::trace::EventKind;
        let arrivals = telemetry
            .events()
            .iter()
            .filter(|ev| matches!(ev.kind, EventKind::Arrival { .. }))
            .count();
        let completions = telemetry
            .events()
            .iter()
            .filter(|ev| matches!(ev.kind, EventKind::Completion { .. }))
            .count();
        assert_eq!(arrivals, 30);
        assert_eq!(completions, 30);
        assert!(telemetry.mean_occupancy() > 0.0);
    }

    #[test]
    fn contended_runs_actually_reconfigure() {
        let e = engine();
        let trace = TraceConfig::new(Scenario::A, QosLevel::Soft, 400.0, 60, 23).generate();
        let (_, telemetry) = e.run_traced(&trace);
        assert!(
            telemetry.reconfigurations() > 0,
            "a contended trace must trigger dynamic fission"
        );
    }

    #[test]
    fn exclusive_mode_serializes() {
        let spatial = engine();
        let exclusive = PlanariaEngine::with_library(spatial.library().clone())
            .with_mode(SchedulingMode::ExclusiveFifo);
        let iso = spatial.library().isolated_latency(DnnId::ResNet50);
        let mk = |id| Request {
            id,
            dnn: DnnId::ResNet50,
            arrival: 0.0,
            priority: 5,
            qos: 1.0,
        };
        let r = exclusive.run(&[mk(0), mk(1), mk(2)]);
        let worst = r
            .completions
            .iter()
            .map(Completion::latency)
            .fold(0.0, f64::max);
        assert!(
            worst > 2.5 * iso,
            "FIFO-exclusive must serialize: {worst} vs {iso}"
        );
        // Spatial co-location beats it.
        let s = spatial.run(&[mk(0), mk(1), mk(2)]);
        let worst_s = s
            .completions
            .iter()
            .map(Completion::latency)
            .fold(0.0, f64::max);
        assert!(worst_s < worst);
    }
}
