//! Golden round-trip and bit-identity tests for the telemetry path.
//!
//! 1. A contended multi-tenant run must export a Chrome trace that the
//!    in-repo validator accepts, and that parses back with the expected
//!    structure (multiple tenant processes, nested/disjoint spans,
//!    globally monotonic timestamps — the validator enforces the last
//!    two).
//! 2. The collector hooks must be invisible to the simulation:
//!    `run` (NullCollector), `run_with_collector(RecordingCollector)`,
//!    and `run_traced` must produce bit-identical results.

use planaria_arch::AcceleratorConfig;
use planaria_core::PlanariaEngine;
use planaria_prema::PremaEngine;
use planaria_telemetry::{
    chrome_trace, occupancy_tsv, validate_chrome_trace, Event, RecordingCollector,
};
use planaria_workload::{QosLevel, Scenario, SimResult, TraceConfig};

/// A contended trace: all nine models arriving faster than the
/// 16-subarray chip can absorb, forcing queueing and reallocation.
fn contended_workload() -> Vec<planaria_workload::Request> {
    TraceConfig::new(Scenario::C, QosLevel::Medium, 2000.0, 40, 42).generate()
}

/// Collapses a result into exact bit patterns (f64 `to_bits`), so "equal"
/// means *identical*, not merely within float tolerance.
fn bits(r: &SimResult) -> Vec<u64> {
    let mut v = vec![r.makespan.to_bits(), r.total_energy.as_pj().to_bits()];
    for c in &r.completions {
        v.push(c.request.id);
        v.push(c.request.arrival.to_bits());
        v.push(c.finish.to_bits());
        v.push(c.energy.as_pj().to_bits());
    }
    v
}

#[test]
fn contended_run_exports_a_valid_chrome_trace() {
    let engine = PlanariaEngine::new(AcceleratorConfig::planaria());
    let workload = contended_workload();
    let mut rec = RecordingCollector::new();
    engine.run_with_collector(&workload, &mut rec);

    let json = chrome_trace(&rec);
    let stats = validate_chrome_trace(&json).expect("exported trace must validate");
    assert!(stats.complete > 0, "expected exec/queue spans");
    assert!(stats.instants > 0, "expected arrival/completion instants");
    assert!(stats.counters > 0, "expected occupancy counters");
    assert!(
        stats.processes > 2,
        "expected the chip plus multiple tenant processes, got {}",
        stats.processes
    );
    // Structural markers of the track layout.
    for marker in [
        "\"process_name\"",
        "subarray 00",
        "lifecycle",
        "occupancy",
        "queued",
        "arrival",
        "complete",
    ] {
        assert!(json.contains(marker), "trace JSON missing {marker:?}");
    }

    // The recording itself must show contention: at least one queue wait
    // with nonzero duration, and at least one allocation shrink/regrow.
    let events: Vec<&Event> = rec.events().iter().map(|t| &t.event).collect();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, Event::QueueWait { duration, .. } if !duration.is_zero())),
        "expected a nonzero queue wait under contention"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, Event::Allocation { from, to, .. } if *from > 0 && *to > 0 && from != to)),
        "expected a mid-flight reallocation under contention"
    );

    // The occupancy timeline covers the same run.
    let tsv = occupancy_tsv(&rec);
    assert!(tsv.lines().count() > 2, "expected occupancy samples");
}

#[test]
fn prema_contended_run_exports_a_valid_chrome_trace() {
    let engine = PremaEngine::new_default();
    let workload = contended_workload();
    let mut rec = RecordingCollector::new();
    engine.run_with_collector(&workload, &mut rec);
    let stats = validate_chrome_trace(&chrome_trace(&rec)).expect("PREMA trace must validate too");
    assert!(stats.complete > 0);
    assert!(stats.processes > 2);
    // The temporal baseline preempts under contention.
    assert!(
        rec.events()
            .iter()
            .any(|t| matches!(t.event, Event::Preemption { .. })),
        "expected PREMA preemptions under contention"
    );
}

#[test]
fn planaria_results_are_bit_identical_across_collectors() {
    let engine = PlanariaEngine::new(AcceleratorConfig::planaria());
    let workload = contended_workload();

    let plain = engine.run(&workload);
    let mut rec = RecordingCollector::new();
    let recorded = engine.run_with_collector(&workload, &mut rec);
    let (traced, trace) = engine.run_traced(&workload);

    assert_eq!(
        bits(&plain),
        bits(&recorded),
        "RecordingCollector changed results"
    );
    assert_eq!(bits(&plain), bits(&traced), "EngineTrace changed results");
    assert!(rec.len() > 0);
    assert!(!trace.events().is_empty());
}

#[test]
fn prema_results_are_bit_identical_across_collectors() {
    let engine = PremaEngine::new_default();
    let workload = contended_workload();
    let plain = engine.run(&workload);
    let mut rec = RecordingCollector::new();
    let recorded = engine.run_with_collector(&workload, &mut rec);
    assert_eq!(
        bits(&plain),
        bits(&recorded),
        "RecordingCollector changed results"
    );
    assert!(rec.len() > 0);
}

#[test]
fn chrome_export_is_byte_deterministic_across_runs() {
    let engine = PlanariaEngine::new(AcceleratorConfig::planaria());
    let workload = contended_workload();
    let export = |engine: &PlanariaEngine| {
        let mut rec = RecordingCollector::new();
        engine.run_with_collector(&workload, &mut rec);
        (chrome_trace(&rec), occupancy_tsv(&rec))
    };
    let (j1, t1) = export(&engine);
    let (j2, t2) = export(&engine);
    assert_eq!(j1, j2, "Chrome export must be byte-deterministic");
    assert_eq!(t1, t2, "occupancy TSV must be byte-deterministic");
}
